"""Lease bookkeeping for distributed task execution.

A **lease** is the unit of at-least-once delivery: the coordinator
grants one task to one worker for a bounded wall-clock window, the
worker renews it with heartbeats while computing, and a lease whose
deadline passes — or whose worker's connection dies — returns its task
to the pending queue for **reassignment**.  This generalises the PR-3
retry machinery (fresh-pool rebuilds after a SIGKILLed pool worker)
into something transport-agnostic: the pool backend retries by
attempts, the socket backend by leases, and both converge on the same
byte-identical store because tasks are idempotent and results are
assembled in request order regardless of who finally computed them.

Two very different failure kinds get very different budgets:

* **infrastructure loss** (worker SIGKILLed, connection cut, lease
  expired without heartbeat) requeues the task unconditionally — the
  task itself was never proven bad, so reassignment is free, exactly as
  a fresh pool re-runs tasks a dying pool took down with it;
* a **reported task error** (the worker ran it and sent back a failure)
  consumes the ``max_failures`` budget; past it the task is terminal —
  :meth:`exhausted_tasks` — mirroring ``--retries`` for the pool path.

The table is deliberately free of I/O and of direct clock reads: the
caller injects ``now`` values (the socket backend passes
``time.monotonic()``, the chaos tests pass a hand-cranked fake), which
keeps every state transition — grant, renew, expire, complete,
duplicate, stale heartbeat — unit-testable without sockets or sleeps.

State machine per task::

    pending --issue--> active --complete--> done
       ^                 |  |
       |---expire--------+  +--fail--> pending   (failures <= budget)
       |---release_worker+  +--fail--> exhausted (budget spent)

Completions are idempotent: a RESULT for an already-done task is
reported as a duplicate and changes nothing; a RESULT on an expired
(reassigned) lease still completes the task if it is first — the rows
are deterministic, so whichever copy arrives first is the same bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .planner import Task

__all__ = ["Lease", "LeaseTable"]


@dataclass
class Lease:
    """One grant of one task to one worker, valid until ``deadline``."""

    lease_id: int
    task: Task
    worker: str
    issued_at: float
    deadline: float
    attempt: int = 1


@dataclass
class _TaskState:
    seq: int                      # request-order position, for requeueing
    attempts: int = 0             # total grants (incl. reassignments)
    failures: int = 0             # worker-reported errors only
    done: bool = False
    exhausted: bool = False
    lease: Optional[Lease] = None  # the currently active lease, if any


class LeaseTable:
    """Grant/renew/expire/complete bookkeeping for one task set.

    ``lease_timeout_s`` bounds how long a silent worker may hold a
    task; ``max_failures`` is how many *reported* task errors beyond
    the first attempt are tolerated before the task is terminal (the
    distributed twin of the scheduler's ``retries``).
    """

    def __init__(self, tasks: Sequence[Task], lease_timeout_s: float,
                 max_failures: int = 0):
        if lease_timeout_s <= 0:
            raise ValueError(
                f"lease_timeout_s must be > 0, got {lease_timeout_s}")
        if max_failures < 0:
            raise ValueError(
                f"max_failures must be >= 0, got {max_failures}")
        self.lease_timeout_s = lease_timeout_s
        self.max_failures = max_failures
        self._states: Dict[Task, _TaskState] = {
            task: _TaskState(seq=i) for i, task in enumerate(tasks)}
        self._pending: List[Task] = list(tasks)   # request order
        self._active: Dict[int, Lease] = {}
        self._next_lease_id = 1
        # transition counters, mirrored into repro.obs by the backend
        self.stats = {"issued": 0, "completed": 0, "expired": 0,
                      "released": 0, "failed": 0, "duplicates": 0,
                      "stale_heartbeats": 0, "heartbeats": 0}

    # -- queries --------------------------------------------------------
    def pending_tasks(self) -> List[Task]:
        return list(self._pending)

    def active_leases(self) -> List[Lease]:
        return sorted(self._active.values(), key=lambda le: le.lease_id)

    def is_done(self, task: Task) -> bool:
        return self._states[task].done

    def exhausted_tasks(self) -> List[Task]:
        """Terminally failed tasks, in request order."""
        return sorted((t for t, s in self._states.items() if s.exhausted),
                      key=lambda t: self._states[t].seq)

    def settled(self) -> bool:
        """Every task is either done or terminally failed."""
        return all(s.done or s.exhausted for s in self._states.values())

    def attempts_of(self, task: Task) -> int:
        return self._states[task].attempts

    # -- transitions ----------------------------------------------------
    def issue(self, worker: str, now: float,
              prefer_shard: Optional[Sequence[Task]] = None
              ) -> Optional[Lease]:
        """Grant the next pending task to ``worker``, or ``None``.

        ``prefer_shard`` biases selection toward the worker's own shard
        (first pending member wins); when the shard is drained the
        first pending task overall is granted instead — work stealing
        keeps the sweep finishing even when a shard's owner died.
        """
        task = None
        if prefer_shard is not None:
            shard = set(prefer_shard)
            mine = [t for t in self._pending if t in shard]
            if mine:
                task = mine[0]
        if task is None and self._pending:
            task = self._pending[0]
        if task is None:
            return None
        self._pending.remove(task)
        state = self._states[task]
        state.attempts += 1
        lease = Lease(self._next_lease_id, task, worker, now,
                      now + self.lease_timeout_s, attempt=state.attempts)
        self._next_lease_id += 1
        self._active[lease.lease_id] = lease
        state.lease = lease
        self.stats["issued"] += 1
        return lease

    def heartbeat(self, lease_id: int, now: float) -> bool:
        """Renew a lease; ``False`` (stale) if it expired or finished.

        A heartbeat arriving after reassignment must not resurrect the
        old lease — the task either belongs to someone else now or is
        already done, and both are counted as stale.
        """
        lease = self._active.get(lease_id)
        if lease is None:
            self.stats["stale_heartbeats"] += 1
            return False
        lease.deadline = now + self.lease_timeout_s
        self.stats["heartbeats"] += 1
        return True

    def renew_worker(self, worker: str, now: float,
                     holding: Optional[Sequence[int]] = None) -> int:
        """Piggybacked liveness: renew ``worker``'s active leases.

        With lease pipelining a worker holds a *queue* of leases while
        computing the head one, and RESULT/CACHE traffic for the head
        proves the whole queue is alive — so those frames carry a
        ``holding`` list and the coordinator renews exactly the listed
        leases (never leases of other workers: a confused or malicious
        peer cannot keep someone else's lease alive).  ``holding=None``
        renews everything the worker holds.

        Renewing only what the worker *says* it holds matters: a LEASE
        frame dropped on the wire is queued nowhere, so it must be
        allowed to expire and reassign — blanket renewal on any frame
        would keep it alive forever and stall the sweep.

        Returns the number of leases renewed (0 means every listed id
        was stale — expired, reassigned, or never this worker's).
        """
        wanted = None if holding is None else set(holding)
        renewed = 0
        for lease in self._active.values():
            if lease.worker != worker:
                continue
            if wanted is not None and lease.lease_id not in wanted:
                continue
            lease.deadline = now + self.lease_timeout_s
            renewed += 1
        if renewed:
            self.stats["renewals"] = self.stats.get("renewals", 0) + renewed
        return renewed

    def complete(self, lease_id: int, task: Task) -> str:
        """Record a RESULT; returns ``"ok"``, ``"duplicate"`` or ``"late"``.

        * ``ok``: first completion of the task, via a live lease;
        * ``late``: first completion, but via a lease that had already
          been expired/reassigned — the result is accepted (it is
          byte-identical by the determinism contract) and the task is
          pulled back out of the pending queue;
        * ``duplicate``: the task was already done; nothing changes.
        """
        state = self._states[task]
        if state.done:
            self._drop_lease(lease_id)
            self.stats["duplicates"] += 1
            return "duplicate"
        verdict = "ok" if lease_id in self._active else "late"
        state.done = True
        state.exhausted = False
        self._drop_lease(lease_id)
        if state.lease is not None:
            self._drop_lease(state.lease.lease_id)
        if task in self._pending:     # completed while queued for retry
            self._pending.remove(task)
        self.stats["completed"] += 1
        return verdict

    def fail(self, lease_id: int, task: Task) -> bool:
        """A worker *reported* an error for its lease.

        Requeues the task while the failure budget lasts and returns
        ``True``; past the budget the task turns terminal
        (:meth:`exhausted_tasks`) and this returns ``False``.
        """
        self._drop_lease(lease_id)
        state = self._states[task]
        if state.done:
            return True
        state.failures += 1
        self.stats["failed"] += 1
        if state.failures > self.max_failures:
            state.exhausted = True
            if task in self._pending:
                self._pending.remove(task)
            return False
        self._requeue(task)
        return True

    def expire(self, now: float) -> List[Lease]:
        """Expire every overdue lease, requeueing the tasks; returns them."""
        overdue = [lease for lease in self._active.values()
                   if lease.deadline <= now]
        for lease in sorted(overdue, key=lambda le: le.lease_id):
            self._drop_lease(lease.lease_id)
            self._requeue(lease.task)
            self.stats["expired"] += 1
        return overdue

    def release_worker(self, worker: str) -> List[Lease]:
        """A worker died/disconnected: requeue all of its leases."""
        held = [lease for lease in self._active.values()
                if lease.worker == worker]
        for lease in sorted(held, key=lambda le: le.lease_id):
            self._drop_lease(lease.lease_id)
            self._requeue(lease.task)
            self.stats["released"] += 1
        return held

    # -- internals ------------------------------------------------------
    def _drop_lease(self, lease_id: int) -> None:
        lease = self._active.pop(lease_id, None)
        if lease is not None:
            state = self._states[lease.task]
            if state.lease is lease:
                state.lease = None

    def _requeue(self, task: Task) -> None:
        state = self._states[task]
        if state.done or state.exhausted or task in self._pending:
            return
        seq = state.seq
        at = next((i for i, t in enumerate(self._pending)
                   if self._states[t].seq > seq), len(self._pending))
        self._pending.insert(at, task)   # keep request order canonical
