"""Process-pool experiment scheduler.

:func:`run_experiments` is the engine behind ``repro experiments
--jobs N``: it fans experiment ids — and, for the big sweeps that
declare a :class:`~repro.core.registry.CellPlan`, individual table rows
— out to a :class:`~concurrent.futures.ProcessPoolExecutor`, consults
the optional on-disk :class:`~repro.exp.cache.ResultCache` first, and
reassembles everything in request order.

Determinism contract
--------------------
Parallel output is **byte-identical** to a serial run:

* every experiment (and every cell) builds its own freshly seeded
  simulator, so worker processes share no simulation state;
* workers ship results back as canonical JSON / plain row tuples, and
  the parent assembles them in request/index order, never completion
  order;
* cell rows are computed by exactly the same functions the serial
  runner uses (:func:`repro.core.registry.run_cell`).

Metrics under ``--jobs > 1``: each worker runs its task under a private
:class:`~repro.obs.MetricsRegistry` and returns the snapshot; the
parent folds every snapshot into its own attached registry — in
request order, so merged summaries are deterministic too.  Cache hits
run no simulation and therefore contribute no metrics.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import registry
from ..core.registry import ExperimentResult
from .cache import ResultCache

__all__ = ["run_experiments"]


# -- worker entry points (top-level so they pickle under spawn too) ---------

def _observed(fn, *args):
    """Run ``fn(*args)`` under a fresh registry; return (value, snapshot)."""
    from ..obs import MetricsRegistry, use_registry
    reg = MetricsRegistry()
    with use_registry(reg):
        value = fn(*args)
    return value, reg.to_dict()


def _worker_experiment(exp_id: str, quick: bool, observe: bool):
    if observe:
        result, snap = _observed(registry.run_experiment, exp_id, quick)
        return result.to_json(), snap
    return registry.run_experiment(exp_id, quick).to_json(), None


def _worker_cell(exp_id: str, quick: bool, index: int, observe: bool):
    if observe:
        return _observed(registry.run_cell, exp_id, quick, index)
    return registry.run_cell(exp_id, quick, index), None


# -- the engine -------------------------------------------------------------

def run_experiments(ids: Sequence[str] = (), quick: bool = True,
                    jobs: Optional[int] = None,
                    cache: Optional[ResultCache] = None,
                    ) -> List[ExperimentResult]:
    """Run experiments, optionally cached and in parallel.

    ``jobs=None`` means ``os.cpu_count()``; ``jobs=1`` runs in-process
    (identical to :func:`repro.core.registry.run_all` plus caching).
    Results come back in the order of ``ids`` (registry order when
    ``ids`` is empty).  Unknown ids raise
    :class:`~repro.core.registry.UnknownExperimentError` before any
    work starts.
    """
    keys = registry.resolve_ids(ids)
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")

    results: Dict[str, ExperimentResult] = {}
    to_run: List[str] = []
    for exp_id in keys:
        cached = cache.load(exp_id, quick) if cache is not None else None
        if cached is not None:
            results[exp_id] = cached
        else:
            to_run.append(exp_id)

    n_tasks = sum(max(1, registry.n_cells(k, quick)) for k in to_run)
    if jobs == 1 or n_tasks <= 1:
        for exp_id in to_run:
            results[exp_id] = registry.run_experiment(exp_id, quick)
    else:
        _run_pool(to_run, quick, min(jobs, n_tasks), results)

    if cache is not None:
        for exp_id in to_run:
            cache.save(exp_id, quick, results[exp_id])
    return [results[k] for k in keys]


def _run_pool(to_run: Sequence[str], quick: bool, jobs: int,
              results: Dict[str, ExperimentResult]) -> None:
    from ..obs import get_default_registry
    parent_registry = get_default_registry()
    observe = parent_registry is not None

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        cell_futures: Dict[str, List] = {}
        exp_futures: Dict[str, object] = {}
        for exp_id in to_run:
            n = registry.n_cells(exp_id, quick)
            if n:
                cell_futures[exp_id] = [
                    pool.submit(_worker_cell, exp_id, quick, i, observe)
                    for i in range(n)]
            else:
                exp_futures[exp_id] = pool.submit(
                    _worker_experiment, exp_id, quick, observe)

        # Collect in request order (and cells in index order) so both
        # the result list and any merged metrics are deterministic.
        for exp_id in to_run:
            snapshots = []
            if exp_id in cell_futures:
                rows = []
                for future in cell_futures[exp_id]:
                    row, snap = future.result()
                    rows.append(tuple(row))
                    snapshots.append(snap)
                results[exp_id] = registry.finalize_cells(
                    exp_id, quick, rows)
            else:
                result_json, snap = exp_futures[exp_id].result()
                results[exp_id] = ExperimentResult.from_json(result_json)
                snapshots.append(snap)
            if observe:
                for snap in snapshots:
                    if snap:
                        parent_registry.merge_snapshot(snap)
