"""The experiment scheduler: planning, caching and result assembly.

:func:`run_experiments` is the engine behind ``repro experiments``.
Since the backend split it owns exactly three responsibilities, all
backend-independent:

* **planning** — resolve ids, consult the on-disk
  :class:`~repro.exp.cache.ResultCache`, and decompose the remainder
  into tasks (:func:`repro.exp.planner.build_tasks`);
* **delegation** — hand the task list to an execution backend
  (:mod:`repro.exp.backends`): the in-process serial fast path, the
  :class:`~repro.exp.backends.LocalPoolBackend` process pool, socket
  workers across hosts, or a dry run;
* **assembly** — reassemble outcomes in request order, finalize and
  cache each experiment incrementally, merge metrics snapshots
  deterministically, and apply ``keep_going``.

Determinism contract
--------------------
Backend output is **byte-identical** to a serial run, for every
backend and worker count:

* every experiment (and every cell) builds its own freshly seeded
  simulator, so workers share no simulation state;
* workers ship results back as canonical JSON / plain row lists, and
  the scheduler assembles them in request/index order, never
  completion order;
* every backend executes the same task body,
  :func:`repro.exp.planner.run_task`.

``tests/test_exp_backends.py`` is the conformance wall pinning this.

Metrics under parallel backends: each worker runs its task under a
private :class:`~repro.obs.MetricsRegistry` and returns the snapshot;
the parent folds every snapshot into its own attached registry — in
request order, so merged summaries are deterministic too.  Cache hits
run no simulation and therefore contribute no metrics.

Hardening
---------
Long sweeps survive misbehaving workers:

* ``timeout_s`` arms a per-task wall-clock alarm *inside* the worker
  (``SIGALRM``), so a runaway simulation surfaces as a
  :class:`TimeoutError` result instead of wedging the backend;
* worker death is the backend's business — the pool backend rebuilds a
  fresh pool and resubmits unfinished tasks, the socket backend
  expires the dead worker's leases and reassigns them — and either
  way completed results are never recomputed;
* ``keep_going=True`` converts a permanently failing experiment into an
  :class:`ExperimentFailure` entry (appended to ``failures``) while
  every unaffected experiment still completes and caches;
* results are cached **incrementally**, as soon as each experiment
  finalizes, so an interrupted sweep resumes from what it finished.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core import registry
from ..core.registry import ExperimentResult
from ..faults.context import activated
from ..flow.context import activated as flow_activated
from .backends import ExecutionBackend, create_backend
from .cache import ResultCache
from .planner import RunContext, Task, build_tasks, worker_env

__all__ = ["run_experiments", "ExperimentFailure"]


@dataclass
class ExperimentFailure:
    """Why one experiment produced no result under ``keep_going``."""

    exp_id: str
    error: str
    attempts: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.exp_id}: {self.error} (after {self.attempts} attempts)"


def run_experiments(ids: Sequence[str] = (), quick: bool = True,
                    jobs: Optional[int] = None,
                    cache: Optional[ResultCache] = None, *,
                    timeout_s: Optional[float] = None,
                    retries: int = 0, backoff_s: float = 0.5,
                    keep_going: bool = False,
                    failures: Optional[List[ExperimentFailure]] = None,
                    faults_spec: Optional[str] = None,
                    flow_mode: Optional[str] = None,
                    backend: Union[str, ExecutionBackend, None] = None,
                    workers: Optional[int] = None,
                    listen: Optional[str] = None,
                    cell_cache_dir: Optional[str] = None,
                    ) -> List[ExperimentResult]:
    """Run experiments, optionally cached, in parallel, and hardened.

    ``jobs=None`` means ``os.cpu_count()``; ``jobs=1`` runs in-process
    (identical to :func:`repro.core.registry.run_all` plus caching).
    Results come back in the order of ``ids`` (registry order when
    ``ids`` is empty).  Unknown ids raise
    :class:`~repro.core.registry.UnknownExperimentError` before any
    work starts.

    ``backend`` selects the execution backend: ``None`` keeps the
    historical behaviour (in-process when ``jobs == 1``, the local
    process pool otherwise); ``"local"``/``"socket"``/``"dryrun"`` — or
    a ready-made :class:`~repro.exp.backends.ExecutionBackend` instance,
    which the caller then owns and closes — force one explicitly.
    ``workers`` sizes socket/dry-run fan-out (default: ``jobs``);
    ``listen`` makes the socket backend wait for externally started
    ``repro worker`` processes instead of spawning local ones;
    ``cell_cache_dir`` enables the shared remote cell cache.

    ``timeout_s`` bounds each task's wall clock; ``retries`` re-runs
    *failed* tasks (with ``backoff_s * 2**attempt`` sleeps for the
    serial/pool paths).  Worker death is not a task failure: backends
    reassign such tasks without consuming the retry budget.  With
    ``keep_going`` a permanently failed experiment is skipped — an
    :class:`ExperimentFailure` is appended to ``failures`` (when given)
    and the remaining experiments still run; without it the first
    failure propagates after the budget is spent.

    ``faults_spec`` activates a process-wide
    :class:`~repro.faults.FaultPlan` spec for the duration of the run —
    in this process *and* in every worker — and becomes part of the
    result-cache key.  ``flow_mode`` does the same for flow-level
    acceleration (:mod:`repro.flow`): ``"auto"``/``"on"`` are keyed
    into the cache, ``"off"``/``None`` keep the clean packet-mode key.
    """
    keys = registry.resolve_ids(ids)
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    with activated(faults_spec), flow_activated(flow_mode):
        results: Dict[str, ExperimentResult] = {}
        to_run: List[str] = []
        for exp_id in keys:
            cached = cache.load(exp_id, quick) if cache is not None else None
            if cached is not None:
                results[exp_id] = cached
            else:
                to_run.append(exp_id)

        failed: List[ExperimentFailure] = []
        n_tasks = sum(max(1, registry.n_cells(k, quick)) for k in to_run)
        if backend is None and (jobs == 1 or n_tasks <= 1):
            _run_serial(to_run, quick, results, cache, faults_spec,
                        flow_mode, timeout_s, retries, backoff_s,
                        keep_going, failed)
        else:
            from ..obs import get_default_registry
            parent_registry = get_default_registry()
            ctx = RunContext(quick=quick,
                             observe=parent_registry is not None,
                             faults_spec=faults_spec, timeout_s=timeout_s,
                             flow_mode=flow_mode, retries=retries,
                             backoff_s=backoff_s)
            if isinstance(backend, ExecutionBackend):
                exec_backend, owned = backend, False
            else:
                exec_backend = create_backend(
                    backend or "local", jobs=min(jobs, max(n_tasks, 1)),
                    workers=workers, listen=listen,
                    cache_dir=cell_cache_dir)
                owned = True
            try:
                _run_backend(exec_backend, to_run, quick, results, cache,
                             ctx, parent_registry, keep_going, failed)
            finally:
                if owned:
                    exec_backend.close()
        if failures is not None:
            failures.extend(failed)
        return [results[k] for k in keys if k in results]


def _run_serial(to_run: Sequence[str], quick: bool,
                results: Dict[str, ExperimentResult],
                cache: Optional[ResultCache], faults_spec: Optional[str],
                flow_mode: Optional[str],
                timeout_s: Optional[float], retries: int, backoff_s: float,
                keep_going: bool,
                failed: List[ExperimentFailure]) -> None:
    """The in-process fast path: no backend, no pickling, no sockets."""
    for exp_id in to_run:
        error: Optional[BaseException] = None
        for attempt in range(retries + 1):
            if attempt:
                time.sleep(backoff_s * 2 ** (attempt - 1))
            try:
                with worker_env(faults_spec, timeout_s, flow_mode):
                    results[exp_id] = registry.run_experiment(exp_id, quick)
                if cache is not None:
                    cache.save(exp_id, quick, results[exp_id])
                error = None
                break
            except Exception as exc:
                error = exc
        if error is not None:
            if not keep_going:
                raise error
            failed.append(ExperimentFailure(exp_id, repr(error),
                                            retries + 1))


def _run_backend(exec_backend: ExecutionBackend, to_run: Sequence[str],
                 quick: bool, results: Dict[str, ExperimentResult],
                 cache: Optional[ResultCache], ctx: RunContext,
                 parent_registry, keep_going: bool,
                 failed: List[ExperimentFailure]) -> None:
    """Drain one backend run, assembling outcomes in request order.

    The backend may yield outcomes in any order; experiments finalize
    (and cache) incrementally as soon as all of their tasks are in.
    Planned-only outcomes (dry run) finalize nothing.
    """
    tasks = build_tasks(to_run, quick)
    done: Dict[Task, Tuple[object, object]] = {}
    errors: Dict[Task, BaseException] = {}
    attempts: Dict[Task, int] = {}
    for outcome in exec_backend.run_tasks(tasks, ctx):
        if outcome.planned:
            continue
        task = (outcome.task[0], outcome.task[1])
        if outcome.error is not None:
            errors[task] = outcome.error
            attempts[task] = outcome.attempts
            continue
        done[task] = (outcome.payload, outcome.snapshot)
        _finalize_ready(to_run, quick, tasks, done, results, cache,
                        ctx.observe, parent_registry)
    if errors:
        if not keep_going:
            raise next(errors[t] for t in tasks if t in errors)
        bad_exps: List[str] = []
        for task in tasks:
            if task in errors and task[0] not in bad_exps:
                bad_exps.append(task[0])
        for exp_id in bad_exps:
            first = next(t for t in tasks if t in errors and t[0] == exp_id)
            failed.append(ExperimentFailure(exp_id, repr(errors[first]),
                                            attempts.get(first, 1)))


def _finalize_ready(to_run: Sequence[str], quick: bool, tasks: List[Task],
                    done: Dict[Task, Tuple[object, object]],
                    results: Dict[str, ExperimentResult],
                    cache: Optional[ResultCache], observe: bool,
                    parent_registry) -> None:
    """Assemble every experiment whose tasks have all completed.

    Runs after each completed task, so finished experiments are cached
    incrementally — a later crash or ^C does not throw them away.
    Metrics snapshots merge exactly once per task, in request order.
    """
    for exp_id in to_run:
        if exp_id in results:
            continue
        exp_tasks = [t for t in tasks if t[0] == exp_id]
        if not all(t in done for t in exp_tasks):
            continue
        snapshots = []
        if exp_tasks[0][1] is None:
            result_json, snap = done[exp_tasks[0]]
            results[exp_id] = ExperimentResult.from_json(result_json)
            snapshots.append(snap)
        else:
            rows = []
            for task in exp_tasks:
                row, snap = done[task]
                rows.append(tuple(row))
                snapshots.append(snap)
            results[exp_id] = registry.finalize_cells(exp_id, quick, rows)
        if cache is not None:
            cache.save(exp_id, quick, results[exp_id])
        if observe:
            for snap in snapshots:
                if snap:
                    parent_registry.merge_snapshot(snap)
