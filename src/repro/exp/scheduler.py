"""The experiment scheduler: planning, caching and result assembly.

:func:`run_experiments` is the engine behind ``repro experiments``.
Since the backend split it owns exactly three responsibilities, all
backend-independent:

* **planning** — resolve ids, consult the on-disk
  :class:`~repro.exp.cache.ResultCache`, and decompose the remainder
  into tasks (:func:`repro.exp.planner.build_tasks`);
* **delegation** — hand the task list to an execution backend
  (:mod:`repro.exp.backends`): the in-process serial fast path, the
  :class:`~repro.exp.backends.LocalPoolBackend` process pool, socket
  workers across hosts, or a dry run;
* **assembly** — reassemble outcomes in request order, finalize and
  cache each experiment incrementally, merge metrics snapshots
  deterministically, and apply ``keep_going``.

Determinism contract
--------------------
Backend output is **byte-identical** to a serial run, for every
backend and worker count:

* every experiment (and every cell) builds its own freshly seeded
  simulator, so workers share no simulation state;
* workers ship results back as canonical JSON / plain row lists, and
  the scheduler assembles them in request/index order, never
  completion order;
* every backend executes the same task body,
  :func:`repro.exp.planner.run_task`.

``tests/test_exp_backends.py`` is the conformance wall pinning this.

Metrics under parallel backends: each worker runs its task under a
private :class:`~repro.obs.MetricsRegistry` and returns the snapshot;
the parent folds every snapshot into its own attached registry — in
request order, so merged summaries are deterministic too.  Cache hits
run no simulation and therefore contribute no metrics.

Hardening
---------
Long sweeps survive misbehaving workers:

* ``timeout_s`` arms a per-task wall-clock alarm *inside* the worker
  (``SIGALRM``), so a runaway simulation surfaces as a
  :class:`TimeoutError` result instead of wedging the backend;
* worker death is the backend's business — the pool backend rebuilds a
  fresh pool and resubmits unfinished tasks, the socket backend
  expires the dead worker's leases and reassigns them — and either
  way completed results are never recomputed;
* ``keep_going=True`` converts a permanently failing experiment into an
  :class:`ExperimentFailure` entry (appended to ``failures``) while
  every unaffected experiment still completes and caches;
* results are cached **incrementally**, as soon as each experiment
  finalizes, so an interrupted sweep resumes from what it finished.

Crash safety (PR 8)
-------------------
``journal_dir`` arms the write-ahead :class:`~repro.exp.journal.RunJournal`:
the plan, every lease grant and every task result are fsync'd to disk
*before* the scheduler acts on them, and task payloads are persisted in
the journal's content-addressed cell cache.  ``resume=RUN_ID`` then
survives even a coordinator SIGKILL: the journaled plan is adopted (and
its digest verified — resuming into changed sources/versions fails
closed with :class:`~repro.exp.journal.ResumeError`), journaled results
are reloaded, and only tasks without a journaled + cached payload
execute again — producing a store byte-identical to an uninterrupted
run, with skipped/re-executed counts observable via :mod:`repro.obs`.

``chaos_spec`` arms a seeded :class:`~repro.exp.chaos.ChaosPlan` proxy
between the socket coordinator and its workers (socket backend only —
anything else raises ``ValueError``); ``connect_budget_s`` bounds the
wait for the first worker handshake, after which an *owned* socket
backend degrades gracefully: a warning on stderr, an
``exp/backend_fallbacks`` counter, and the sweep finishes on the local
pool.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core import registry
from ..core.registry import ExperimentResult
from ..faults.context import activated
from ..flow.context import activated as flow_activated
from .backends import (ExecutionBackend, LocalPoolBackend, NoWorkersError,
                       SocketWorkerBackend, create_backend)
from .cache import ResultCache
from .chaos import ChaosError, ChaosPlan, maybe_crash
from .journal import (DEFAULT_JOURNAL_DIR, ResumeError, RunJournal,
                      plan_digest)
from .planner import RunContext, Task, build_tasks, task_key, worker_env

__all__ = ["run_experiments", "ExperimentFailure"]


@dataclass
class ExperimentFailure:
    """Why one experiment produced no result under ``keep_going``."""

    exp_id: str
    error: str
    attempts: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.exp_id}: {self.error} (after {self.attempts} attempts)"


def run_experiments(ids: Sequence[str] = (), quick: bool = True,
                    jobs: Optional[int] = None,
                    cache: Optional[ResultCache] = None, *,
                    timeout_s: Optional[float] = None,
                    retries: int = 0, backoff_s: float = 0.5,
                    keep_going: bool = False,
                    failures: Optional[List[ExperimentFailure]] = None,
                    faults_spec: Optional[str] = None,
                    flow_mode: Optional[str] = None,
                    backend: Union[str, ExecutionBackend, None] = None,
                    workers: Optional[int] = None,
                    listen: Optional[str] = None,
                    cell_cache_dir: Optional[str] = None,
                    chaos_spec: Optional[str] = None,
                    journal_dir: Optional[str] = None,
                    journal_id: Optional[str] = None,
                    resume: Optional[str] = None,
                    connect_budget_s: Optional[float] = None,
                    pipeline: Optional[int] = None,
                    ) -> List[ExperimentResult]:
    """Run experiments, optionally cached, in parallel, and hardened.

    ``jobs=None`` means ``os.cpu_count()``; ``jobs=1`` runs in-process
    (identical to :func:`repro.core.registry.run_all` plus caching).
    Results come back in the order of ``ids`` (registry order when
    ``ids`` is empty).  Unknown ids raise
    :class:`~repro.core.registry.UnknownExperimentError` before any
    work starts.

    ``backend`` selects the execution backend: ``None`` keeps the
    historical behaviour (in-process when ``jobs == 1``, the local
    process pool otherwise); ``"local"``/``"socket"``/``"dryrun"`` — or
    a ready-made :class:`~repro.exp.backends.ExecutionBackend` instance,
    which the caller then owns and closes — force one explicitly.
    ``workers`` sizes socket/dry-run fan-out (default: ``jobs``);
    ``listen`` makes the socket backend wait for externally started
    ``repro worker`` processes instead of spawning local ones;
    ``cell_cache_dir`` enables the shared remote cell cache.

    ``timeout_s`` bounds each task's wall clock; ``retries`` re-runs
    *failed* tasks (with ``backoff_s * 2**attempt`` sleeps for the
    serial/pool paths).  Worker death is not a task failure: backends
    reassign such tasks without consuming the retry budget.  With
    ``keep_going`` a permanently failed experiment is skipped — an
    :class:`ExperimentFailure` is appended to ``failures`` (when given)
    and the remaining experiments still run; without it the first
    failure propagates after the budget is spent.

    ``faults_spec`` activates a process-wide
    :class:`~repro.faults.FaultPlan` spec for the duration of the run —
    in this process *and* in every worker — and becomes part of the
    result-cache key.  ``flow_mode`` does the same for flow-level
    acceleration (:mod:`repro.flow`): ``"auto"``/``"on"`` are keyed
    into the cache, ``"off"``/``None`` keep the clean packet-mode key.

    ``chaos_spec`` arms a :class:`~repro.exp.chaos.ChaosPlan` on the
    wire (socket backend only; never changes result bytes, so it is not
    keyed into any cache).  ``journal_dir``/``journal_id`` arm the
    write-ahead run journal; ``resume`` continues a journaled run by id
    — its plan (ids, quick, fault/flow specs) is adopted from the
    journal and its digest verified, so ``ids`` may be left empty.
    ``connect_budget_s`` bounds the socket backend's wait for a first
    worker handshake; when the scheduler owns the backend it then falls
    back to the local pool with a warning instead of failing the sweep.
    ``pipeline`` forces the socket backend's credit-based lease window
    (``--pipeline N``); by default the window derives from the grid
    size, degrading to stop-and-wait on tiny grids.
    """
    journal: Optional[RunJournal] = None
    plan_rec: Optional[Dict] = None
    if resume is not None:
        journal = RunJournal.resume(Path(journal_dir or DEFAULT_JOURNAL_DIR),
                                    resume)
        plan_rec = journal.plan_record()
        if plan_rec is None:
            raise ResumeError(f"journal {resume!r} has no plan record — "
                              f"the run died before planning; rerun it "
                              f"from scratch")
        if ids and list(ids) != list(plan_rec["ids"]):
            raise ResumeError(f"--resume {resume} cannot change the "
                              f"experiment set (journaled: "
                              f"{' '.join(plan_rec['ids'])})")
        ids = list(plan_rec["ids"])
        quick = bool(plan_rec["quick"])
        faults_spec = plan_rec.get("faults")
        flow_mode = plan_rec.get("flow")
    keys = registry.resolve_ids(ids)
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    backend_name = (backend.name if isinstance(backend, ExecutionBackend)
                    else backend)
    if chaos_spec:
        ChaosPlan.parse(chaos_spec)     # fail fast on a bad spec
        if isinstance(backend, ExecutionBackend):
            raise ChaosError("chaos_spec applies to backends the "
                             "scheduler creates; pass chaos= to your "
                             "SocketWorkerBackend instead")
        if backend_name != "socket":
            raise ChaosError("--chaos requires --backend socket (it "
                             "injects into the coordinator/worker wire)")
    journaling = (journal is not None or journal_dir is not None
                  or journal_id is not None)
    with activated(faults_spec), flow_activated(flow_mode):
        if resume is not None:
            digest = plan_digest(keys, quick, faults_spec, flow_mode)
            if digest != plan_rec.get("digest"):
                raise ResumeError(
                    f"plan digest mismatch for run {resume!r}: the "
                    f"experiment sources, package version or specs "
                    f"changed since the journal was written — resuming "
                    f"would not reproduce the original bytes")
        results: Dict[str, ExperimentResult] = {}
        to_run: List[str] = []
        for exp_id in keys:
            cached = cache.load(exp_id, quick) if cache is not None else None
            if cached is not None:
                results[exp_id] = cached
            else:
                to_run.append(exp_id)

        failed: List[ExperimentFailure] = []
        n_tasks = sum(max(1, registry.n_cells(k, quick)) for k in to_run)
        if (backend is None and (jobs == 1 or n_tasks <= 1)
                and not journaling):
            _run_serial(to_run, quick, results, cache, faults_spec,
                        flow_mode, timeout_s, retries, backoff_s,
                        keep_going, failed)
        else:
            from ..obs import get_default_registry
            parent_registry = get_default_registry()
            ctx = RunContext(quick=quick,
                             observe=parent_registry is not None,
                             faults_spec=faults_spec, timeout_s=timeout_s,
                             flow_mode=flow_mode, retries=retries,
                             backoff_s=backoff_s)
            tasks = build_tasks(to_run, quick)
            preloaded: Dict[Task, Tuple[object, object]] = {}
            if journaling:
                if journal is None:
                    journal = RunJournal.create(
                        Path(journal_dir or DEFAULT_JOURNAL_DIR), journal_id)
                    journal.append({
                        "type": "plan", "ids": list(keys), "quick": quick,
                        "faults": faults_spec, "flow": flow_mode,
                        "digest": plan_digest(keys, quick, faults_spec,
                                              flow_mode),
                        "backend": backend_name or "local",
                        "tasks": [task_key(t) for t in tasks]})
                    maybe_crash("journal.plan")
                else:
                    preloaded = _preload_from_journal(journal, tasks,
                                                      parent_registry)
            if isinstance(backend, ExecutionBackend):
                exec_backend, owned = backend, False
            else:
                exec_backend = create_backend(
                    backend or "local", jobs=min(jobs, max(n_tasks, 1)),
                    workers=workers, listen=listen,
                    cache_dir=cell_cache_dir, chaos=chaos_spec,
                    connect_budget_s=connect_budget_s,
                    pipeline=pipeline)
                owned = True
            if journal is not None:
                exec_backend.attach_journal(journal)
            try:
                try:
                    _run_backend(exec_backend, to_run, quick, tasks,
                                 preloaded, results, cache, ctx,
                                 parent_registry, keep_going, failed,
                                 journal)
                except NoWorkersError as exc:
                    if not (owned and isinstance(exec_backend,
                                                 SocketWorkerBackend)):
                        raise
                    # graceful degradation: no worker ever joined (and
                    # no outcome was produced), so the local pool can
                    # finish the sweep without double execution
                    print(f"repro: {exc}; falling back to the local "
                          f"backend", file=sys.stderr)
                    if parent_registry is not None:
                        parent_registry.counter(
                            "exp", "backend_fallbacks",
                            wanted="socket").inc()
                    exec_backend.close()
                    fallback = LocalPoolBackend(
                        jobs=min(jobs, max(n_tasks, 1)))
                    if journal is not None:
                        fallback.attach_journal(journal)
                    try:
                        _run_backend(fallback, to_run, quick, tasks,
                                     preloaded, results, cache, ctx,
                                     parent_registry, keep_going, failed,
                                     journal)
                    finally:
                        fallback.close()
            finally:
                if owned:
                    exec_backend.close()
                if journal is not None:
                    journal.append({"type": "end",
                                    "failures": len(failed)})
                    journal.close()
        if failures is not None:
            failures.extend(failed)
        return [results[k] for k in keys if k in results]


def _preload_from_journal(journal: RunJournal, tasks: Sequence[Task],
                          parent_registry) -> Dict[Task, Tuple[object,
                                                               object]]:
    """Tasks whose results the journal already holds (key + payload).

    A journaled result whose payload is missing from the journal's cell
    cache (disk loss) simply re-executes — resume is safe, not clever.
    """
    completed = journal.completed()
    preloaded: Dict[Task, Tuple[object, object]] = {}
    for task in tasks:
        key = completed.get(task_key(task))
        if key is None:
            continue
        payload = journal.cells.load(key)
        if payload is not None:
            preloaded[task] = (payload, None)
    skipped = len(preloaded)
    reexecuted = len(tasks) - skipped
    if parent_registry is not None:
        parent_registry.counter("exp", "resume_tasks",
                                kind="skipped").inc(skipped)
        parent_registry.counter("exp", "resume_tasks",
                                kind="reexecuted").inc(reexecuted)
    journal.append({"type": "resume", "skipped": skipped,
                    "reexecuted": reexecuted})
    return preloaded


def _run_serial(to_run: Sequence[str], quick: bool,
                results: Dict[str, ExperimentResult],
                cache: Optional[ResultCache], faults_spec: Optional[str],
                flow_mode: Optional[str],
                timeout_s: Optional[float], retries: int, backoff_s: float,
                keep_going: bool,
                failed: List[ExperimentFailure]) -> None:
    """The in-process fast path: no backend, no pickling, no sockets."""
    for exp_id in to_run:
        error: Optional[BaseException] = None
        for attempt in range(retries + 1):
            if attempt:
                time.sleep(backoff_s * 2 ** (attempt - 1))
            try:
                with worker_env(faults_spec, timeout_s, flow_mode):
                    results[exp_id] = registry.run_experiment(exp_id, quick)
                if cache is not None:
                    cache.save(exp_id, quick, results[exp_id])
                error = None
                break
            except Exception as exc:
                error = exc
        if error is not None:
            if not keep_going:
                raise error
            failed.append(ExperimentFailure(exp_id, repr(error),
                                            retries + 1))


def _run_backend(exec_backend: ExecutionBackend, to_run: Sequence[str],
                 quick: bool, tasks: List[Task],
                 preloaded: Dict[Task, Tuple[object, object]],
                 results: Dict[str, ExperimentResult],
                 cache: Optional[ResultCache], ctx: RunContext,
                 parent_registry, keep_going: bool,
                 failed: List[ExperimentFailure],
                 journal: Optional[RunJournal] = None) -> None:
    """Drain one backend run, assembling outcomes in request order.

    The backend may yield outcomes in any order; experiments finalize
    (and cache) incrementally as soon as all of their tasks are in.
    Planned-only outcomes (dry run) finalize nothing.  ``preloaded``
    results (adopted from a resumed journal) count as already done and
    are never re-executed; every fresh payload is journaled (cell saved,
    then the result record appended) *before* finalization, so a crash
    between the two re-finalizes from the journal instead of re-running.
    """
    done: Dict[Task, Tuple[object, object]] = dict(preloaded)
    errors: Dict[Task, BaseException] = {}
    attempts: Dict[Task, int] = {}
    if done:
        _finalize_ready(to_run, quick, tasks, done, results, cache,
                        ctx.observe, parent_registry)
    remaining = [t for t in tasks if t not in done]
    for outcome in exec_backend.run_tasks(remaining, ctx):
        if outcome.planned:
            continue
        task = (outcome.task[0], outcome.task[1])
        if outcome.error is not None:
            errors[task] = outcome.error
            attempts[task] = outcome.attempts
            if journal is not None:
                journal.append({"type": "error", "task": task_key(task),
                                "error": repr(outcome.error),
                                "attempts": outcome.attempts})
            continue
        done[task] = (outcome.payload, outcome.snapshot)
        if journal is not None:
            key = journal.cells.key(task[0], quick, task[1])
            journal.cells.save(key, outcome.payload)
            journal.append({"type": "result", "task": task_key(task),
                            "key": key})
            maybe_crash("journal.result")
        _finalize_ready(to_run, quick, tasks, done, results, cache,
                        ctx.observe, parent_registry)
    if errors:
        if not keep_going:
            raise next(errors[t] for t in tasks if t in errors)
        bad_exps: List[str] = []
        for task in tasks:
            if task in errors and task[0] not in bad_exps:
                bad_exps.append(task[0])
        for exp_id in bad_exps:
            first = next(t for t in tasks if t in errors and t[0] == exp_id)
            failed.append(ExperimentFailure(exp_id, repr(errors[first]),
                                            attempts.get(first, 1)))


def _finalize_ready(to_run: Sequence[str], quick: bool, tasks: List[Task],
                    done: Dict[Task, Tuple[object, object]],
                    results: Dict[str, ExperimentResult],
                    cache: Optional[ResultCache], observe: bool,
                    parent_registry) -> None:
    """Assemble every experiment whose tasks have all completed.

    Runs after each completed task, so finished experiments are cached
    incrementally — a later crash or ^C does not throw them away.
    Metrics snapshots merge exactly once per task, in request order.
    """
    for exp_id in to_run:
        if exp_id in results:
            continue
        exp_tasks = [t for t in tasks if t[0] == exp_id]
        if not all(t in done for t in exp_tasks):
            continue
        snapshots = []
        if exp_tasks[0][1] is None:
            result_json, snap = done[exp_tasks[0]]
            results[exp_id] = ExperimentResult.from_json(result_json)
            snapshots.append(snap)
        else:
            rows = []
            for task in exp_tasks:
                row, snap = done[task]
                rows.append(tuple(row))
                snapshots.append(snap)
            results[exp_id] = registry.finalize_cells(exp_id, quick, rows)
        if cache is not None:
            cache.save(exp_id, quick, results[exp_id])
        maybe_crash("scheduler.finalize")
        if observe:
            for snap in snapshots:
                if snap:
                    parent_registry.merge_snapshot(snap)
