"""Process-pool experiment scheduler.

:func:`run_experiments` is the engine behind ``repro experiments
--jobs N``: it fans experiment ids — and, for the big sweeps that
declare a :class:`~repro.core.registry.CellPlan`, individual table rows
— out to a :class:`~concurrent.futures.ProcessPoolExecutor`, consults
the optional on-disk :class:`~repro.exp.cache.ResultCache` first, and
reassembles everything in request order.

Determinism contract
--------------------
Parallel output is **byte-identical** to a serial run:

* every experiment (and every cell) builds its own freshly seeded
  simulator, so worker processes share no simulation state;
* workers ship results back as canonical JSON / plain row tuples, and
  the parent assembles them in request/index order, never completion
  order;
* cell rows are computed by exactly the same functions the serial
  runner uses (:func:`repro.core.registry.run_cell`).

Metrics under ``--jobs > 1``: each worker runs its task under a private
:class:`~repro.obs.MetricsRegistry` and returns the snapshot; the
parent folds every snapshot into its own attached registry — in
request order, so merged summaries are deterministic too.  Cache hits
run no simulation and therefore contribute no metrics.

Hardening
---------
Long sweeps survive misbehaving workers:

* ``timeout_s`` arms a per-task wall-clock alarm *inside* the worker
  (``SIGALRM``), so a runaway simulation surfaces as a
  :class:`TimeoutError` result instead of wedging the pool;
* a worker that dies outright (OOM kill, segfault) breaks its
  ``ProcessPoolExecutor``; the scheduler rebuilds a fresh pool and
  retries only the unfinished tasks, up to ``retries`` times with
  exponential backoff — completed results are never recomputed;
* ``keep_going=True`` converts a permanently failing experiment into an
  :class:`ExperimentFailure` entry (appended to ``failures``) while
  every unaffected experiment still completes and caches;
* results are cached **incrementally**, as soon as each experiment
  finalizes, so an interrupted sweep resumes from what it finished.
"""

from __future__ import annotations

import contextlib
import os
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import registry
from ..core.registry import ExperimentResult
from ..faults.context import activated
from ..flow.context import activated as flow_activated
from .cache import ResultCache

__all__ = ["run_experiments", "ExperimentFailure"]

#: A task is one unit of pool work: (exp_id, cell_index-or-None).
_Task = Tuple[str, Optional[int]]


@dataclass
class ExperimentFailure:
    """Why one experiment produced no result under ``keep_going``."""

    exp_id: str
    error: str
    attempts: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.exp_id}: {self.error} (after {self.attempts} attempts)"


# -- worker entry points (top-level so they pickle under spawn too) ---------

def _raise_timeout(signum, frame):
    raise TimeoutError("experiment task exceeded its time budget")


@contextlib.contextmanager
def _worker_env(faults_spec: Optional[str], timeout_s: Optional[float],
                flow_mode: Optional[str] = None):
    """Worker-side task context: fault spec, flow mode + wall-clock alarm.

    The fault spec and flow mode are always (re)applied — pool workers
    are reused across tasks, so leftover state from a previous task must
    never leak.  The alarm uses ``SIGALRM`` where available (main thread
    on POSIX); elsewhere tasks simply run unbounded.
    """
    from ..faults.context import set_active_spec
    from ..flow.context import set_flow_mode
    previous = set_active_spec(faults_spec)
    previous_flow = set_flow_mode(flow_mode)
    use_alarm = (timeout_s is not None and hasattr(signal, "setitimer")
                 and threading.current_thread() is threading.main_thread())
    if use_alarm:
        old_handler = signal.signal(signal.SIGALRM, _raise_timeout)
        old_timer = signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, *old_timer)
            signal.signal(signal.SIGALRM, old_handler)
        set_flow_mode(previous_flow)
        set_active_spec(previous)


def _observed(fn, *args):
    """Run ``fn(*args)`` under a fresh registry; return (value, snapshot)."""
    from ..obs import MetricsRegistry, use_registry
    reg = MetricsRegistry()
    with use_registry(reg):
        value = fn(*args)
    return value, reg.to_dict()


def _worker_experiment(exp_id: str, quick: bool, observe: bool,
                       faults_spec: Optional[str] = None,
                       timeout_s: Optional[float] = None,
                       flow_mode: Optional[str] = None):
    with _worker_env(faults_spec, timeout_s, flow_mode):
        if observe:
            result, snap = _observed(registry.run_experiment, exp_id, quick)
            return result.to_json(), snap
        return registry.run_experiment(exp_id, quick).to_json(), None


def _worker_cell(exp_id: str, quick: bool, index: int, observe: bool,
                 faults_spec: Optional[str] = None,
                 timeout_s: Optional[float] = None,
                 flow_mode: Optional[str] = None):
    with _worker_env(faults_spec, timeout_s, flow_mode):
        if observe:
            return _observed(registry.run_cell, exp_id, quick, index)
        return registry.run_cell(exp_id, quick, index), None


# -- the engine -------------------------------------------------------------

def run_experiments(ids: Sequence[str] = (), quick: bool = True,
                    jobs: Optional[int] = None,
                    cache: Optional[ResultCache] = None, *,
                    timeout_s: Optional[float] = None,
                    retries: int = 0, backoff_s: float = 0.5,
                    keep_going: bool = False,
                    failures: Optional[List[ExperimentFailure]] = None,
                    faults_spec: Optional[str] = None,
                    flow_mode: Optional[str] = None,
                    ) -> List[ExperimentResult]:
    """Run experiments, optionally cached, in parallel, and hardened.

    ``jobs=None`` means ``os.cpu_count()``; ``jobs=1`` runs in-process
    (identical to :func:`repro.core.registry.run_all` plus caching).
    Results come back in the order of ``ids`` (registry order when
    ``ids`` is empty).  Unknown ids raise
    :class:`~repro.core.registry.UnknownExperimentError` before any
    work starts.

    ``timeout_s`` bounds each task's wall clock; ``retries`` re-runs
    failed tasks (with ``backoff_s * 2**attempt`` sleeps) in a fresh
    pool, which also covers workers killed outright.  With
    ``keep_going`` a permanently failed experiment is skipped — an
    :class:`ExperimentFailure` is appended to ``failures`` (when given)
    and the remaining experiments still run; without it the first
    failure propagates after the attempt budget is spent.

    ``faults_spec`` activates a process-wide
    :class:`~repro.faults.FaultPlan` spec for the duration of the run —
    in this process *and* in every worker — and becomes part of the
    result-cache key.  ``flow_mode`` does the same for flow-level
    acceleration (:mod:`repro.flow`): ``"auto"``/``"on"`` are keyed
    into the cache, ``"off"``/``None`` keep the clean packet-mode key.
    """
    keys = registry.resolve_ids(ids)
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    with activated(faults_spec), flow_activated(flow_mode):
        results: Dict[str, ExperimentResult] = {}
        to_run: List[str] = []
        for exp_id in keys:
            cached = cache.load(exp_id, quick) if cache is not None else None
            if cached is not None:
                results[exp_id] = cached
            else:
                to_run.append(exp_id)

        failed: List[ExperimentFailure] = []
        n_tasks = sum(max(1, registry.n_cells(k, quick)) for k in to_run)
        if jobs == 1 or n_tasks <= 1:
            _run_serial(to_run, quick, results, cache, faults_spec,
                        flow_mode, timeout_s, retries, backoff_s,
                        keep_going, failed)
        else:
            _run_pool(to_run, quick, min(jobs, n_tasks), results, cache,
                      faults_spec, flow_mode, timeout_s, retries,
                      backoff_s, keep_going, failed)
        if failures is not None:
            failures.extend(failed)
        return [results[k] for k in keys if k in results]


def _run_serial(to_run: Sequence[str], quick: bool,
                results: Dict[str, ExperimentResult],
                cache: Optional[ResultCache], faults_spec: Optional[str],
                flow_mode: Optional[str],
                timeout_s: Optional[float], retries: int, backoff_s: float,
                keep_going: bool,
                failed: List[ExperimentFailure]) -> None:
    for exp_id in to_run:
        error: Optional[BaseException] = None
        for attempt in range(retries + 1):
            if attempt:
                time.sleep(backoff_s * 2 ** (attempt - 1))
            try:
                with _worker_env(faults_spec, timeout_s, flow_mode):
                    results[exp_id] = registry.run_experiment(exp_id, quick)
                if cache is not None:
                    cache.save(exp_id, quick, results[exp_id])
                error = None
                break
            except Exception as exc:
                error = exc
        if error is not None:
            if not keep_going:
                raise error
            failed.append(ExperimentFailure(exp_id, repr(error),
                                            retries + 1))


def _run_pool(to_run: Sequence[str], quick: bool, jobs: int,
              results: Dict[str, ExperimentResult],
              cache: Optional[ResultCache], faults_spec: Optional[str],
              flow_mode: Optional[str],
              timeout_s: Optional[float], retries: int, backoff_s: float,
              keep_going: bool,
              failed: List[ExperimentFailure]) -> None:
    from ..obs import get_default_registry
    parent_registry = get_default_registry()
    observe = parent_registry is not None

    tasks: List[_Task] = []
    for exp_id in to_run:
        n = registry.n_cells(exp_id, quick)
        if n:
            tasks.extend((exp_id, i) for i in range(n))
        else:
            tasks.append((exp_id, None))

    done: Dict[_Task, Tuple[object, object]] = {}
    errors: Dict[_Task, BaseException] = {}
    attempts = 0
    pending = list(tasks)
    while pending and attempts <= retries:
        if attempts:
            time.sleep(backoff_s * 2 ** (attempts - 1))
        errors = {}
        # A fresh pool per attempt: a worker killed hard (OOM/segfault)
        # breaks the executor for every outstanding future, and a
        # broken pool cannot be reused.
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {}
            for task in pending:
                exp_id, index = task
                if index is None:
                    futures[task] = pool.submit(
                        _worker_experiment, exp_id, quick, observe,
                        faults_spec, timeout_s, flow_mode)
                else:
                    futures[task] = pool.submit(
                        _worker_cell, exp_id, quick, index, observe,
                        faults_spec, timeout_s, flow_mode)
            # Collect in submission (= request) order, never completion
            # order, so results and merged metrics stay deterministic.
            for task in pending:
                try:
                    done[task] = futures[task].result()
                except (Exception, BrokenProcessPool) as exc:
                    errors[task] = exc
        pending = [t for t in pending if t in errors]
        attempts += 1
        _finalize_ready(to_run, quick, tasks, done, results, cache,
                        observe, parent_registry)

    if pending:
        bad_exps = []
        for task in pending:
            if task[0] not in bad_exps:
                bad_exps.append(task[0])
        if not keep_going:
            raise errors[pending[0]]
        for exp_id in bad_exps:
            first = next(errors[t] for t in pending if t[0] == exp_id)
            failed.append(ExperimentFailure(exp_id, repr(first), attempts))


def _finalize_ready(to_run: Sequence[str], quick: bool, tasks: List[_Task],
                    done: Dict[_Task, Tuple[object, object]],
                    results: Dict[str, ExperimentResult],
                    cache: Optional[ResultCache], observe: bool,
                    parent_registry) -> None:
    """Assemble every experiment whose tasks have all completed.

    Runs after each pool attempt, so finished experiments are cached
    incrementally — a later crash or ^C does not throw them away.
    Metrics snapshots merge exactly once per task, in request order.
    """
    for exp_id in to_run:
        if exp_id in results:
            continue
        exp_tasks = [t for t in tasks if t[0] == exp_id]
        if not all(t in done for t in exp_tasks):
            continue
        snapshots = []
        if exp_tasks[0][1] is None:
            result_json, snap = done[exp_tasks[0]]
            results[exp_id] = ExperimentResult.from_json(result_json)
            snapshots.append(snap)
        else:
            rows = []
            for task in exp_tasks:
                row, snap = done[task]
                rows.append(tuple(row))
                snapshots.append(snap)
            results[exp_id] = registry.finalize_cells(exp_id, quick, rows)
        if cache is not None:
            cache.save(exp_id, quick, results[exp_id])
        if observe:
            for snap in snapshots:
                if snap:
                    parent_registry.merge_snapshot(snap)
