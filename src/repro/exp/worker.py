"""``python -m repro.exp.worker`` — a socket-backend worker process.

Start any number of these, on any hosts that can import :mod:`repro`
at the same version, and point them at a coordinator
(``repro experiments --backend socket``)::

    python -m repro.exp.worker --connect coordinator-host:7463
    # or, equivalently:
    python -m repro.cli worker --connect coordinator-host:7463

The worker speaks the length-prefixed JSON protocol of
:mod:`repro.exp.protocol`: HELLO, receive the WELCOME run context,
then drain LEASEs — for each one it first queries the coordinator's
shared content-addressed cell cache (CACHE_GET), falls back to its own
local cache directory when given ``--cache-dir``, and only then
computes the task via the same :func:`repro.exp.planner.run_task` body
every other backend uses.  Computed payloads are published back
(CACHE_PUT) before the RESULT, so a row one worker computed is a
remote hit for every other.  While computing, a background thread
renews the lease with HEARTBEATs; a worker that dies mid-task simply
stops heartbeating and the coordinator reassigns.

Reconnect: a worker started before the coordinator is listening, or
whose connection drops mid-run (network cut, chaos proxy reset),
retries with seeded exponential backoff + jitter instead of dying with
``ConnectionRefusedError``.  The ``--connect-budget`` flag (env
``REPRO_EXP_CONNECT_BUDGET_S``) caps how long the worker keeps trying
*without a successful handshake*; each completed WELCOME resets the
budget.  The jitter stream is seeded from the worker id via
:class:`~repro.sim.rng.RngRegistry`, so a fleet's retry schedule is
reproducible and workers don't thunder in lockstep.

Fail-closed: a malformed frame from the coordinator ends the
*connection* (and the worker reconnects fresh — parsing state never
survives garbage); a **version mismatch** in WELCOME, or a BYE
carrying an ``error``, ends the *process* with a typed message —
retrying a wrong-software pairing can never succeed.  Every socket
operation carries a timeout.

Exit codes: 0 clean (BYE / coordinator EOF), 1 connect budget
exhausted, 2 fatal protocol rejection (version mismatch / BYE error).

Chaos hooks (used by the conformance wall, harmless otherwise):

* ``REPRO_EXP_TASK_SLEEP_S`` — sleep this long inside each lease
  before computing, widening the mid-lease window tests SIGKILL into;
* ``REPRO_EXP_DIE_AFTER_PUT`` — a marker-file path; the first worker
  to claim it (atomically, ``O_EXCL``) calls ``os._exit`` right
  between publishing a payload to the cache and sending its RESULT —
  the exact crash window the lease layer must absorb.  Exactly one
  worker across the fleet dies.
"""

from __future__ import annotations

import argparse
import os
import socket as socketlib
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..sim.rng import RngRegistry
from .cache import DEFAULT_CACHE_DIR, CellCache
from .planner import RunContext, run_task, task_key
from .protocol import (PROTOCOL_VERSION, ProtocolError, VersionMismatchError,
                       check_versions, package_version, recv_frame,
                       send_frame)

__all__ = ["serve", "main", "CONNECT_BUDGET_ENV", "DEFAULT_CONNECT_BUDGET_S"]

TASK_SLEEP_ENV = "REPRO_EXP_TASK_SLEEP_S"
DIE_AFTER_PUT_ENV = "REPRO_EXP_DIE_AFTER_PUT"

#: Default ceiling on continuous time without a successful handshake.
CONNECT_BUDGET_ENV = "REPRO_EXP_CONNECT_BUDGET_S"
DEFAULT_CONNECT_BUDGET_S = 60.0

#: Backoff shape: 50 ms doubling to a 2 s cap, times jitter in [0.5, 1.5).
_BACKOFF_BASE_S = 0.05
_BACKOFF_CAP_S = 2.0


def _monotonic() -> float:
    """Deadline/backoff clock (never feeds a result)."""
    return time.monotonic()  # repro-lint: disable=DET101 -- worker-side reconnect deadline clock only


def _default_connect_budget_s() -> float:
    try:
        value = float(os.environ.get(CONNECT_BUDGET_ENV, ""))
        return value if value > 0 else DEFAULT_CONNECT_BUDGET_S
    except ValueError:
        return DEFAULT_CONNECT_BUDGET_S


def _chaos_sleep_s() -> float:
    try:
        return max(0.0, float(os.environ.get(TASK_SLEEP_ENV, "0")))
    except ValueError:
        return 0.0


def _claim_chaos_death() -> bool:
    """Atomically claim the DIE_AFTER_PUT marker file; ``True`` for the
    single worker (fleet-wide) that should now crash."""
    target = os.environ.get(DIE_AFTER_PUT_ENV)
    if not target:
        return False
    try:
        os.close(os.open(target, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
    except OSError:
        return False
    return True


class _Heartbeat:
    """Background lease renewal while the main thread computes."""

    def __init__(self, sock: socketlib.socket, lock: threading.Lock,
                 lease_id: int, interval_s: float):
        self._sock = sock
        self._lock = lock
        self._lease_id = lease_id
        self._interval_s = max(interval_s, 0.01)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            try:
                with self._lock:
                    send_frame(self._sock, {"type": "HEARTBEAT",
                                            "lease": self._lease_id})
            except OSError:
                return

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=5)


def _apply_context(ctx: RunContext):
    """Arm the process-wide fault/flow context (cache keys and task
    bodies must see the coordinator's spec, exactly like pool workers)."""
    from ..faults.context import activated
    from ..flow.context import activated as flow_activated
    import contextlib
    stack = contextlib.ExitStack()
    stack.enter_context(activated(ctx.faults_spec))
    stack.enter_context(flow_activated(ctx.flow_mode))
    return stack


class _FatalRejection(Exception):
    """The coordinator rejected us for a reason retrying cannot fix."""


def serve(connect: str, worker_id: Optional[str] = None,
          cache_dir: Optional[str] = None,
          timeout_s: float = 60.0,
          connect_budget_s: Optional[float] = None) -> int:
    """Connect to a coordinator (retrying with seeded backoff) and drain
    leases until BYE; returns an exit code (0 clean, 1 connect budget
    exhausted, 2 fatal protocol rejection such as a version mismatch)."""
    address = _parse(connect)
    worker_id = worker_id or f"{socketlib.gethostname()}-{os.getpid()}"
    if connect_budget_s is None:
        connect_budget_s = _default_connect_budget_s()
    jitter = RngRegistry().stream(f"worker-backoff:{worker_id}")
    local_cache = CellCache(cache_dir) if cache_dir else None
    keyer = CellCache(cache_dir or DEFAULT_CACHE_DIR)   # key() is diskless
    deadline: Optional[float] = None    # armed while un-handshaken
    attempt = 0
    while True:
        sock = None
        while sock is None:
            try:
                sock = socketlib.create_connection(address,
                                                   timeout=timeout_s)
            except OSError as exc:
                now = _monotonic()
                if deadline is None:
                    deadline = now + connect_budget_s
                if now >= deadline:
                    print(f"repro worker: gave up connecting to "
                          f"{address[0]}:{address[1]} after "
                          f"{connect_budget_s:g}s: {exc}", file=sys.stderr)
                    return 1
                backoff = min(_BACKOFF_CAP_S,
                              _BACKOFF_BASE_S * 2 ** min(attempt, 10))
                attempt += 1
                time.sleep(min(backoff * (0.5 + jitter.random()),
                               max(0.0, deadline - now)))
        if deadline is None:
            deadline = _monotonic() + connect_budget_s
        welcomed = [False]      # set by _session once WELCOME checks out
        try:
            outcome = _session(sock, worker_id, local_cache, keyer,
                               deadline, welcomed)
        except _FatalRejection as exc:
            print(f"repro worker: rejected by coordinator: {exc}",
                  file=sys.stderr)
            return 2
        except VersionMismatchError as exc:
            print(f"repro worker: version mismatch: {exc}", file=sys.stderr)
            return 2
        except ProtocolError as exc:
            # Garbage on the wire fails this *connection* closed; a
            # fresh connection starts with clean parser state.  The
            # budget caps time *without a handshake*, so a session that
            # got its WELCOME still resets it.
            print(f"repro worker: protocol error: {exc}; reconnecting",
                  file=sys.stderr)
            outcome = "welcomed-retry" if welcomed[0] else "retry"
        except OSError as exc:
            print(f"repro worker: connection lost: {exc}; reconnecting",
                  file=sys.stderr)
            outcome = "welcomed-retry" if welcomed[0] else "retry"
        finally:
            try:
                sock.close()
            except OSError:
                pass
        if outcome == "done":
            return 0
        if outcome == "welcomed-retry":
            deadline = None     # a successful handshake resets the budget
            attempt = 0
        now = _monotonic()
        if deadline is not None and now >= deadline:
            print(f"repro worker: no successful handshake with "
                  f"{address[0]}:{address[1]} within {connect_budget_s:g}s",
                  file=sys.stderr)
            return 1


def _session(sock: socketlib.socket, worker_id: str,
             local_cache: Optional[CellCache], keyer: CellCache,
             deadline: float, welcomed: Optional[List[bool]] = None) -> str:
    """One connection's worth of work.

    Returns ``"done"`` (orderly BYE/EOF), ``"retry"`` (no WELCOME
    arrived in budget — connection looks dead), or ``"welcomed-retry"``
    (EOF after a successful handshake — reconnect with a fresh budget).
    Raises :class:`_FatalRejection`/:class:`VersionMismatchError` when
    retrying cannot help.
    """
    lock = threading.Lock()
    with lock:
        send_frame(sock, {"type": "HELLO", "proto": PROTOCOL_VERSION,
                          "version": package_version(),
                          "worker": worker_id})
    welcome = _recv_within(sock, deadline)
    if welcome is None:
        return "retry"
    if welcome.get("type") == "BYE":
        error = welcome.get("error")
        if error:
            raise _FatalRejection(str(error))
        return "done"
    if welcome.get("type") != "WELCOME":
        raise ProtocolError(f"expected WELCOME, got "
                            f"{welcome.get('type')!r}")
    check_versions(welcome, "coordinator")
    if welcomed is not None:
        welcomed[0] = True
    ctx = RunContext.from_wire(welcome.get("ctx", {}))
    shared_cache = bool(welcome.get("cache"))
    heartbeat_s = float(welcome.get("heartbeat_s", 5.0))
    cache_wait_s = max(heartbeat_s * 4, 1.0)
    with _apply_context(ctx):
        while True:
            message = _recv_patiently(sock)
            if message is None:
                return "welcomed-retry"
            if message.get("type") == "BYE":
                error = message.get("error")
                if error:
                    raise _FatalRejection(str(error))
                return "done"
            if message.get("type") != "LEASE":
                continue        # coordinator-side noise; ignore
            _handle_lease(sock, lock, message, ctx, shared_cache,
                          local_cache, keyer, heartbeat_s, cache_wait_s)


def _handle_lease(sock, lock, message: Dict, ctx: RunContext,
                  shared_cache: bool, local_cache: Optional[CellCache],
                  keyer: CellCache, heartbeat_s: float,
                  cache_wait_s: float) -> None:
    lease_id = int(message["lease"])
    task = (str(message["exp_id"]), message.get("index"))
    key = keyer.key(task[0], ctx.quick, task[1])

    # 1. the coordinator's shared cache (a hit is a "remote" hit)
    if shared_cache:
        payload = _cache_get(sock, lock, key, cache_wait_s)
        if payload is not None:
            _send_result(sock, lock, lease_id, payload=payload,
                         cached="remote")
            return
    # 2. our own disk (a "local" hit, published so others share it)
    if local_cache is not None:
        payload = local_cache.load(key)
        if payload is not None:
            if shared_cache:
                with lock:
                    send_frame(sock, {"type": "CACHE_PUT", "key": key,
                                      "payload": payload})
            _send_result(sock, lock, lease_id, payload=payload,
                         cached="local")
            return
    # 3. compute, under heartbeats
    with _Heartbeat(sock, lock, lease_id, heartbeat_s):
        sleep_s = _chaos_sleep_s()
        if sleep_s:
            time.sleep(sleep_s)
        try:
            payload, snapshot = run_task(task, ctx)
        except BaseException as exc:     # the coordinator judges retries
            _send_result(sock, lock, lease_id,
                         error=f"{task_key(task)}: {exc!r}")
            return
    if local_cache is not None:
        try:
            local_cache.save(key, payload)
        except OSError:
            pass
    if shared_cache:
        with lock:
            send_frame(sock, {"type": "CACHE_PUT", "key": key,
                              "payload": payload})
        if _claim_chaos_death():
            # chaos hook: die in the exact window between publishing
            # to the cache and reporting the RESULT
            os._exit(17)
    _send_result(sock, lock, lease_id, payload=payload, snapshot=snapshot)


def _send_result(sock, lock, lease_id: int, payload=None, snapshot=None,
                 cached: Optional[str] = None,
                 error: Optional[str] = None) -> None:
    with lock:
        send_frame(sock, {"type": "RESULT", "lease": lease_id,
                          "payload": payload, "snapshot": snapshot,
                          "cached": cached, "error": error})


def _cache_get(sock, lock, key: str, wait_s: float):
    """Ask the shared cache for ``key``; bounded wait, miss on timeout.

    Under chaos the CACHE reply can be dropped on the wire — waiting
    forever would wedge the lease past its deadline, so after ``wait_s``
    the worker treats the query as a miss and computes locally (the
    result is identical either way; only effort differs)."""
    with lock:
        send_frame(sock, {"type": "CACHE_GET", "key": key})
    deadline = _monotonic() + wait_s
    while _monotonic() < deadline:
        try:
            reply = recv_frame(sock)
        except socketlib.timeout:
            continue
        if reply is None:
            raise OSError("coordinator went away during CACHE_GET")
        if reply.get("type") == "CACHE" and reply.get("key") == key:
            return reply.get("payload")
        if reply.get("type") == "BYE":
            raise OSError("coordinator said BYE during CACHE_GET")
        # anything else (e.g. a stray CACHE for an old key) is skipped
    return None


def _recv_within(sock, deadline: float) -> Optional[Dict]:
    """recv_frame bounded by an absolute deadline (None on timeout)."""
    while _monotonic() < deadline:
        try:
            return recv_frame(sock)
        except socketlib.timeout:
            continue
    return None


def _recv_patiently(sock) -> Optional[Dict]:
    """recv_frame, treating idle timeouts as 'keep waiting'.

    An idle worker legitimately waits while its peers drain the queue;
    only EOF/BYE or a protocol error ends the wait.  The surrounding
    test harness bounds the whole process's lifetime instead.
    """
    while True:
        try:
            return recv_frame(sock)
        except socketlib.timeout:
            continue


def _parse(connect: str) -> Tuple[str, int]:
    host, sep, port = connect.rpartition(":")
    if not sep or not port.isdigit():
        raise SystemExit(f"repro worker: --connect must be HOST:PORT, "
                         f"got {connect!r}")
    return (host or "127.0.0.1", int(port))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.exp.worker",
        description="socket-backend experiment worker")
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address")
    parser.add_argument("--worker-id", default=None,
                        help="stable worker name (default: host-pid)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="optional local cell-cache directory")
    parser.add_argument("--timeout", type=float, default=60.0,
                        metavar="SECONDS",
                        help="socket timeout (default: %(default)s)")
    parser.add_argument("--connect-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="give up after this long without a "
                             "successful coordinator handshake (default: "
                             f"${CONNECT_BUDGET_ENV} or "
                             f"{DEFAULT_CONNECT_BUDGET_S:g}s)")
    args = parser.parse_args(argv)
    return serve(args.connect, worker_id=args.worker_id,
                 cache_dir=args.cache_dir, timeout_s=args.timeout,
                 connect_budget_s=args.connect_budget)


if __name__ == "__main__":
    sys.exit(main())
