"""``python -m repro.exp.worker`` — a socket-backend worker process.

Start any number of these, on any hosts that can import :mod:`repro`
at the same version, and point them at a coordinator
(``repro experiments --backend socket``)::

    python -m repro.exp.worker --connect coordinator-host:7463
    # or, equivalently:
    python -m repro.cli worker --connect coordinator-host:7463

The worker speaks the length-prefixed JSON protocol of
:mod:`repro.exp.protocol`: HELLO, receive the WELCOME run context,
then drain LEASEs.  The coordinator pipelines grants (a credit window
of leases is in flight at once), so the worker keeps a local queue:
frames arriving while a task computes are filed, and the next task
starts without waiting for a fresh grant.

Cache traffic is batched.  When the WELCOME announces the worker's
shard, every shard key is prefetched up front in chunked CACHE_MGET
round trips — the per-cell blocking CACHE_GET only survives for
*reassigned* leases (``attempt > 1``), where another worker may have
published the row between its crash and our grant (and as the
fallback when prefetch is disabled).  Computed payloads are published
in batched CACHE_MPUT frames flushed **before** the batch's RESULTs,
preserving the publish-then-report ordering the crash-window tests
pin.  A worker given ``--cache-dir`` also consults and fills its own
local cache.

Liveness is piggybacked: every outgoing result/cache frame carries
``holding`` — the lease ids queued or computing here — and the
coordinator renews exactly those.  A single session-wide heartbeat
thread covers the quiet stretches (long computes), staying silent
whenever traffic flowed within the last interval; a worker that dies
mid-pipeline simply stops reporting and the coordinator reassigns its
whole window.

Reconnect: a worker started before the coordinator is listening, or
whose connection drops mid-run (network cut, chaos proxy reset),
retries with seeded exponential backoff + jitter instead of dying with
``ConnectionRefusedError``.  The ``--connect-budget`` flag (env
``REPRO_EXP_CONNECT_BUDGET_S``) caps how long the worker keeps trying
*without a successful handshake*; each completed WELCOME resets the
budget.  The jitter stream is seeded from the worker id via
:class:`~repro.sim.rng.RngRegistry`, so a fleet's retry schedule is
reproducible and workers don't thunder in lockstep.

Fail-closed: a malformed frame from the coordinator ends the
*connection* (and the worker reconnects fresh — parsing state never
survives garbage); a **version mismatch** in WELCOME, or a BYE
carrying an ``error``, ends the *process* with a typed message —
retrying a wrong-software pairing can never succeed.  Every socket
operation carries a timeout.

Exit codes: 0 clean (BYE / coordinator EOF), 1 connect budget
exhausted, 2 fatal protocol rejection (version mismatch / BYE error).

Chaos hooks (used by the conformance wall, harmless otherwise):

* ``REPRO_EXP_TASK_SLEEP_S`` — sleep this long inside each lease
  before computing, widening the mid-lease window tests SIGKILL into;
* ``REPRO_EXP_DIE_AFTER_PUT`` — a marker-file path; the first worker
  to claim it (atomically, ``O_EXCL``) calls ``os._exit`` right
  between publishing a payload to the cache and sending its RESULT —
  the exact crash window the lease layer must absorb.  Exactly one
  worker across the fleet dies.
"""

from __future__ import annotations

import argparse
import os
import select
import socket as socketlib
import sys
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..sim.rng import RngRegistry
from .cache import DEFAULT_CACHE_DIR, CellCache
from .planner import RunContext, run_task, task_key
from .protocol import (PROTOCOL_VERSION, ProtocolError, VersionMismatchError,
                       check_versions, package_version, recv_frame,
                       send_frame)

__all__ = ["serve", "main", "CONNECT_BUDGET_ENV", "DEFAULT_CONNECT_BUDGET_S"]

TASK_SLEEP_ENV = "REPRO_EXP_TASK_SLEEP_S"
DIE_AFTER_PUT_ENV = "REPRO_EXP_DIE_AFTER_PUT"

#: Default ceiling on continuous time without a successful handshake.
CONNECT_BUDGET_ENV = "REPRO_EXP_CONNECT_BUDGET_S"
DEFAULT_CONNECT_BUDGET_S = 60.0

#: Backoff shape: 50 ms doubling to a 2 s cap, times jitter in [0.5, 1.5).
_BACKOFF_BASE_S = 0.05
_BACKOFF_CAP_S = 2.0

#: Keys per CACHE_MGET chunk during the WELCOME-time prefetch.
_MGET_BATCH = 64

#: Publish/report sub-batch: with a drained queue results go out
#: immediately (exactly the old per-lease pattern); with a deep
#: pipeline up to this many results amortise one CACHE_MPUT flush.
_PUT_BATCH = 4


def _monotonic() -> float:
    """Deadline/backoff clock (never feeds a result)."""
    return time.monotonic()  # repro-lint: disable=DET101 -- worker-side reconnect deadline clock only


def _default_connect_budget_s() -> float:
    try:
        value = float(os.environ.get(CONNECT_BUDGET_ENV, ""))
        return value if value > 0 else DEFAULT_CONNECT_BUDGET_S
    except ValueError:
        return DEFAULT_CONNECT_BUDGET_S


def _chaos_sleep_s() -> float:
    try:
        return max(0.0, float(os.environ.get(TASK_SLEEP_ENV, "0")))
    except ValueError:
        return 0.0


def _claim_chaos_death() -> bool:
    """Atomically claim the DIE_AFTER_PUT marker file; ``True`` for the
    single worker (fleet-wide) that should now crash."""
    target = os.environ.get(DIE_AFTER_PUT_ENV)
    if not target:
        return False
    try:
        os.close(os.open(target, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
    except OSError:
        return False
    return True


class _Link:
    """The send side of one session: socket, lock, and lease ledger.

    ``holding`` is every lease id this worker has queued or is
    computing; outgoing frames piggyback it so the coordinator can
    renew the whole pipeline from ordinary traffic.  ``last_tx`` lets
    the heartbeat thread stay silent while traffic flows.
    """

    def __init__(self, sock: socketlib.socket, lock: threading.Lock):
        self.sock = sock
        self.lock = lock
        self.holding: set = set()
        self.current: Optional[int] = None
        self.last_tx = _monotonic()

    def send(self, message: Dict, piggyback: bool = True) -> None:
        with self.lock:
            if piggyback and self.holding and "holding" not in message:
                message = dict(message)
                message["holding"] = sorted(self.holding)
            # The lock exists precisely to serialise whole frames onto
            # the shared socket: the only contender is the heartbeat
            # thread, which must not interleave its frame with ours.
            # repro-lint: disable=CON402 -- frame atomicity on the shared socket is the point of this lock; the only waiter is the heartbeat thread
            send_frame(self.sock, message)
            self.last_tx = _monotonic()

    def add_holding(self, lease_id: int) -> None:
        with self.lock:
            self.holding.add(lease_id)

    def settle(self, lease_id: int) -> None:
        """The lease's RESULT is about to go out: stop claiming it."""
        with self.lock:
            self.holding.discard(lease_id)
            if self.current == lease_id:
                self.current = None


class _SessionHeartbeat:
    """Session-wide lease renewal, suppressed while frames flow.

    One thread for the whole session (not one per lease): every
    interval it reports the full ``holding`` list, keeping *queued*
    leases alive while the head of the pipeline computes.  It stays
    silent whenever any frame went out within the last interval —
    result/cache traffic piggybacks the same list, so a busy pipeline
    heartbeats for free.
    """

    def __init__(self, link: _Link, interval_s: float):
        self._link = link
        self._interval_s = max(interval_s, 0.01)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            with self._link.lock:
                holding = sorted(self._link.holding)
                current = self._link.current
                recent = (_monotonic() - self._link.last_tx
                          < self._interval_s)
            if not holding or recent:
                continue
            message: Dict = {"type": "HEARTBEAT", "holding": holding}
            if current is not None:
                message["lease"] = current
            try:
                self._link.send(message, piggyback=False)
            except OSError:
                return

    def __enter__(self) -> "_SessionHeartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=5)


def _apply_context(ctx: RunContext):
    """Arm the process-wide fault/flow context (cache keys and task
    bodies must see the coordinator's spec, exactly like pool workers)."""
    from ..faults.context import activated
    from ..flow.context import activated as flow_activated
    import contextlib
    stack = contextlib.ExitStack()
    stack.enter_context(activated(ctx.faults_spec))
    stack.enter_context(flow_activated(ctx.flow_mode))
    return stack


class _FatalRejection(Exception):
    """The coordinator rejected us for a reason retrying cannot fix."""


def serve(connect: str, worker_id: Optional[str] = None,
          cache_dir: Optional[str] = None,
          timeout_s: float = 60.0,
          connect_budget_s: Optional[float] = None) -> int:
    """Connect to a coordinator (retrying with seeded backoff) and drain
    leases until BYE; returns an exit code (0 clean, 1 connect budget
    exhausted, 2 fatal protocol rejection such as a version mismatch)."""
    address = _parse(connect)
    worker_id = worker_id or f"{socketlib.gethostname()}-{os.getpid()}"
    if connect_budget_s is None:
        connect_budget_s = _default_connect_budget_s()
    jitter = RngRegistry().stream(f"worker-backoff:{worker_id}")
    local_cache = CellCache(cache_dir) if cache_dir else None
    keyer = CellCache(cache_dir or DEFAULT_CACHE_DIR)   # key() is diskless
    deadline: Optional[float] = None    # armed while un-handshaken
    attempt = 0
    while True:
        sock = None
        while sock is None:
            try:
                sock = socketlib.create_connection(address,
                                                   timeout=timeout_s)
                # Result/cache batches are back-to-back small writes;
                # without TCP_NODELAY, Nagle + delayed ACKs stall each
                # flush ~40ms and erase the pipelining win.
                sock.setsockopt(socketlib.IPPROTO_TCP,
                                socketlib.TCP_NODELAY, 1)
            except OSError as exc:
                now = _monotonic()
                if deadline is None:
                    deadline = now + connect_budget_s
                if now >= deadline:
                    print(f"repro worker: gave up connecting to "
                          f"{address[0]}:{address[1]} after "
                          f"{connect_budget_s:g}s: {exc}", file=sys.stderr)
                    return 1
                backoff = min(_BACKOFF_CAP_S,
                              _BACKOFF_BASE_S * 2 ** min(attempt, 10))
                attempt += 1
                time.sleep(min(backoff * (0.5 + jitter.random()),
                               max(0.0, deadline - now)))
        if deadline is None:
            deadline = _monotonic() + connect_budget_s
        welcomed = [False]      # set by _session once WELCOME checks out
        try:
            outcome = _session(sock, worker_id, local_cache, keyer,
                               deadline, welcomed)
        except _FatalRejection as exc:
            print(f"repro worker: rejected by coordinator: {exc}",
                  file=sys.stderr)
            return 2
        except VersionMismatchError as exc:
            print(f"repro worker: version mismatch: {exc}", file=sys.stderr)
            return 2
        except ProtocolError as exc:
            # Garbage on the wire fails this *connection* closed; a
            # fresh connection starts with clean parser state.  The
            # budget caps time *without a handshake*, so a session that
            # got its WELCOME still resets it.
            print(f"repro worker: protocol error: {exc}; reconnecting",
                  file=sys.stderr)
            outcome = "welcomed-retry" if welcomed[0] else "retry"
        except OSError as exc:
            print(f"repro worker: connection lost: {exc}; reconnecting",
                  file=sys.stderr)
            outcome = "welcomed-retry" if welcomed[0] else "retry"
        finally:
            try:
                sock.close()
            except OSError:
                pass
        if outcome == "done":
            return 0
        if outcome == "welcomed-retry":
            deadline = None     # a successful handshake resets the budget
            attempt = 0
        now = _monotonic()
        if deadline is not None and now >= deadline:
            print(f"repro worker: no successful handshake with "
                  f"{address[0]}:{address[1]} within {connect_budget_s:g}s",
                  file=sys.stderr)
            return 1


def _session(sock: socketlib.socket, worker_id: str,
             local_cache: Optional[CellCache], keyer: CellCache,
             deadline: float, welcomed: Optional[List[bool]] = None) -> str:
    """One connection's worth of work.

    Returns ``"done"`` (orderly BYE/EOF), ``"retry"`` (no WELCOME
    arrived in budget — connection looks dead), or ``"welcomed-retry"``
    (EOF after a successful handshake — reconnect with a fresh budget).
    Raises :class:`_FatalRejection`/:class:`VersionMismatchError` when
    retrying cannot help.
    """
    link = _Link(sock, threading.Lock())
    link.send({"type": "HELLO", "proto": PROTOCOL_VERSION,
               "version": package_version(), "worker": worker_id},
              piggyback=False)
    welcome = _recv_within(sock, deadline)
    if welcome is None:
        return "retry"
    if welcome.get("type") == "BYE":
        error = welcome.get("error")
        if error:
            raise _FatalRejection(str(error))
        return "done"
    if welcome.get("type") != "WELCOME":
        raise ProtocolError(f"expected WELCOME, got "
                            f"{welcome.get('type')!r}")
    check_versions(welcome, "coordinator")
    if welcomed is not None:
        welcomed[0] = True
    ctx = RunContext.from_wire(welcome.get("ctx", {}))
    shared_cache = bool(welcome.get("cache"))
    heartbeat_s = float(welcome.get("heartbeat_s", 5.0))
    cache_wait_s = max(heartbeat_s * 4, 1.0)
    announce = welcome.get("prefetch")
    prefetch_mode = isinstance(announce, list)
    pending: Deque[Dict] = deque()
    with _apply_context(ctx):
        with _SessionHeartbeat(link, heartbeat_s):
            announced = _announced_keys(announce, keyer, ctx) \
                if prefetch_mode else set()
            prefetched: Dict[str, object] = {}
            if shared_cache and announced:
                prefetched = _prefetch(sock, link, pending,
                                       sorted(announced), cache_wait_s)
            while True:
                if not pending:
                    message = _recv_patiently(sock)
                    status = _route(message, pending, link)
                    if status is not None:
                        return status
                status = _drain_ready(sock, pending, link)
                if status is not None:
                    return status
                _process_batch(sock, link, pending, ctx, shared_cache,
                               prefetch_mode, announced, prefetched,
                               local_cache, keyer, cache_wait_s)


# repro-lint: disable=WIRE502 -- _route deliberately drops stray frames: late CACHE replies after a timeout are legal here, and the fail-closed arm lives one level up in _session
def _route(message: Optional[Dict], pending: Deque[Dict],
           link: _Link) -> Optional[str]:
    """File one incoming frame; returns a session status when it ends
    the session, ``None`` when draining should continue.

    LEASE frames join the local queue (and the holding ledger, so the
    heartbeat thread keeps them alive before they even start); stray
    frames — e.g. a chaos-duplicated CACHE reply for a finished wait —
    are dropped, never misfiled.
    """
    if message is None:
        return "welcomed-retry"
    mtype = message.get("type")
    if mtype == "BYE":
        error = message.get("error")
        if error:
            raise _FatalRejection(str(error))
        return "done"
    if mtype == "LEASE":
        pending.append(message)
        link.add_holding(int(message["lease"]))
    return None


def _drain_ready(sock: socketlib.socket, pending: Deque[Dict],
                 link: _Link) -> Optional[str]:
    """Queue every frame already arriving on the socket, non-blocking.

    ``select`` with a zero timeout tells us a frame has *started* to
    arrive; :func:`recv_frame` then blocks (under the socket timeout)
    only for the remainder of that frame — parser state never
    fragments the way a truly non-blocking read could.
    """
    while select.select([sock], [], [], 0)[0]:
        status = _route(recv_frame(sock), pending, link)
        if status is not None:
            return status
    return None


def _announced_keys(announce, keyer: CellCache, ctx: RunContext) -> set:
    """Cache keys for the WELCOME's shard announcement.

    The set doubles as the "known at WELCOME time" ledger: a lease for
    a key *outside* it (work stolen from another worker's shard) still
    gets the blocking CACHE_GET fallback, since our prefetch never
    asked about it.
    """
    if not isinstance(announce, list):
        return set()
    keys = set()
    for entry in announce:
        try:
            exp_id, index = entry
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                f"malformed prefetch entry {entry!r}") from exc
        keys.add(keyer.key(str(exp_id), ctx.quick, index))
    return keys


def _prefetch(sock: socketlib.socket, link: _Link, pending: Deque[Dict],
              keys: List[str], wait_s: float) -> Dict[str, object]:
    """Warm a session-local cache with our shard's keys.

    Chunked CACHE_MGET round trips replace what was one blocking
    CACHE_GET per cell.  Replies are merged until the ``eom`` chunk;
    an unanswered chunk (chaos can drop either frame) times out as
    all-miss — the worker just computes those cells, byte-identically.
    LEASE frames arriving mid-wait are queued, never lost.
    """
    found: Dict[str, object] = {}
    for start in range(0, len(keys), _MGET_BATCH):
        link.send({"type": "CACHE_MGET",
                   "keys": keys[start:start + _MGET_BATCH]})
        deadline = _monotonic() + wait_s
        while _monotonic() < deadline:
            try:
                reply = recv_frame(sock)
            except socketlib.timeout:
                continue
            if reply is None:
                raise OSError("coordinator went away during CACHE_MGET")
            if reply.get("type") == "CACHE" and "entries" in reply:
                entries = reply.get("entries")
                if isinstance(entries, dict):
                    for key, payload in entries.items():
                        if payload is not None:
                            found[str(key)] = payload
                if reply.get("eom", True):
                    break
                continue
            if _route(reply, pending, link) is not None:
                raise OSError("coordinator ended session during "
                              "CACHE_MGET")
    return found


def _process_batch(sock: socketlib.socket, link: _Link,
                   pending: Deque[Dict], ctx: RunContext,
                   shared_cache: bool, prefetch_mode: bool,
                   announced: set, prefetched: Dict[str, object],
                   local_cache: Optional[CellCache], keyer: CellCache,
                   cache_wait_s: float) -> None:
    """Drain the local lease queue, batching publishes and results.

    Per lease, in order: the session prefetch map (a "remote" hit),
    the local disk cache (a "local" hit, republished), a blocking
    CACHE_GET only when this is a *reassigned* lease (``attempt > 1``
    — the previous holder may have published right before dying; the
    crash-window test pins this), when the key was never in our
    prefetch announcement (a lease stolen from another worker's
    shard), or when prefetch is off entirely, and finally a real
    compute.  Computed and locally-loaded payloads
    accumulate into one CACHE_MPUT flushed **before** their RESULTs —
    the publish-then-report order (and the DIE_AFTER_PUT crash window
    between the two) is exactly the single-frame protocol's.  With an
    empty queue the flush is per-lease, i.e. the old wire pattern.
    """
    puts: Dict[str, object] = {}
    computed = False
    results: List[Dict] = []

    def flush() -> None:
        nonlocal puts, computed, results
        if puts:
            link.send({"type": "CACHE_MPUT", "entries": puts})
            if computed and _claim_chaos_death():
                # chaos hook: die in the exact window between
                # publishing to the cache and reporting the RESULT
                os._exit(17)
        for frame in results:
            link.settle(int(frame["lease"]))
            link.send(frame)
        puts, computed, results = {}, False, []

    while pending:
        message = pending.popleft()
        lease_id = int(message["lease"])
        task = (str(message["exp_id"]), message.get("index"))
        attempt = int(message.get("attempt", 1))
        key = keyer.key(task[0], ctx.quick, task[1])
        payload = prefetched.get(key)
        if payload is not None:
            results.append(_result_frame(lease_id, payload=payload,
                                         cached="remote"))
        elif (local_cache is not None
                and (payload := local_cache.load(key)) is not None):
            if shared_cache:
                puts[key] = payload
            results.append(_result_frame(lease_id, payload=payload,
                                         cached="local"))
        else:
            remote = None
            if shared_cache and (attempt > 1 or not prefetch_mode
                                 or key not in announced):
                remote = _cache_get(sock, link, pending, key,
                                    cache_wait_s)
            if remote is not None:
                results.append(_result_frame(lease_id, payload=remote,
                                             cached="remote"))
            else:
                results.append(_compute(link, lease_id, task, key, ctx,
                                        shared_cache, local_cache, puts))
                if shared_cache and key in puts:
                    computed = True
        if not pending or len(results) >= _PUT_BATCH:
            flush()
    flush()


def _compute(link: _Link, lease_id: int, task, key: str, ctx: RunContext,
             shared_cache: bool, local_cache: Optional[CellCache],
             puts: Dict[str, object]) -> Dict:
    """Run one task body; returns its RESULT frame (error or payload)."""
    with link.lock:
        link.current = lease_id
    try:
        sleep_s = _chaos_sleep_s()
        if sleep_s:
            time.sleep(sleep_s)
        try:
            payload, snapshot = run_task(tuple(task), ctx)
        except BaseException as exc:    # the coordinator judges retries
            return _result_frame(lease_id,
                                 error=f"{task_key(tuple(task))}: {exc!r}")
    finally:
        with link.lock:
            if link.current == lease_id:
                link.current = None
    if local_cache is not None:
        try:
            local_cache.save(key, payload)
        except OSError:
            pass
    if shared_cache:
        puts[key] = payload
        return _result_frame(lease_id, payload=payload,
                             snapshot=snapshot, key=key)
    return _result_frame(lease_id, payload=payload, snapshot=snapshot)


def _result_frame(lease_id: int, payload=None, snapshot=None,
                  cached: Optional[str] = None,
                  error: Optional[str] = None,
                  key: Optional[str] = None) -> Dict:
    frame = {"type": "RESULT", "lease": lease_id, "payload": payload,
             "snapshot": snapshot, "cached": cached, "error": error}
    if key is not None:
        frame["key"] = key      # lets the coordinator publish even if
    return frame                # the CACHE_MPUT was lost on the wire


def _cache_get(sock, link: _Link, pending: Deque[Dict], key: str,
               wait_s: float):
    """Ask the shared cache for ``key``; bounded wait, miss on timeout.

    Under chaos the CACHE reply can be dropped on the wire — waiting
    forever would wedge the lease past its deadline, so after ``wait_s``
    the worker treats the query as a miss and computes locally (the
    result is identical either way; only effort differs).  LEASE
    frames arriving mid-wait are queued, never lost."""
    link.send({"type": "CACHE_GET", "key": key})
    deadline = _monotonic() + wait_s
    while _monotonic() < deadline:
        try:
            reply = recv_frame(sock)
        except socketlib.timeout:
            continue
        if reply is None:
            raise OSError("coordinator went away during CACHE_GET")
        if reply.get("type") == "CACHE" and reply.get("key") == key:
            return reply.get("payload")
        if _route(reply, pending, link) is not None:
            raise OSError("coordinator ended session during CACHE_GET")
    return None


def _recv_within(sock, deadline: float) -> Optional[Dict]:
    """recv_frame bounded by an absolute deadline (None on timeout)."""
    while _monotonic() < deadline:
        try:
            return recv_frame(sock)
        except socketlib.timeout:
            continue
    return None


def _recv_patiently(sock) -> Optional[Dict]:
    """recv_frame, treating idle timeouts as 'keep waiting'.

    An idle worker legitimately waits while its peers drain the queue;
    only EOF/BYE or a protocol error ends the wait.  The surrounding
    test harness bounds the whole process's lifetime instead.
    """
    while True:
        try:
            return recv_frame(sock)
        except socketlib.timeout:
            continue


def _parse(connect: str) -> Tuple[str, int]:
    host, sep, port = connect.rpartition(":")
    if not sep or not port.isdigit():
        raise SystemExit(f"repro worker: --connect must be HOST:PORT, "
                         f"got {connect!r}")
    return (host or "127.0.0.1", int(port))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.exp.worker",
        description="socket-backend experiment worker")
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address")
    parser.add_argument("--worker-id", default=None,
                        help="stable worker name (default: host-pid)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="optional local cell-cache directory")
    parser.add_argument("--timeout", type=float, default=60.0,
                        metavar="SECONDS",
                        help="socket timeout (default: %(default)s)")
    parser.add_argument("--connect-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="give up after this long without a "
                             "successful coordinator handshake (default: "
                             f"${CONNECT_BUDGET_ENV} or "
                             f"{DEFAULT_CONNECT_BUDGET_S:g}s)")
    args = parser.parse_args(argv)
    return serve(args.connect, worker_id=args.worker_id,
                 cache_dir=args.cache_dir, timeout_s=args.timeout,
                 connect_budget_s=args.connect_budget)


if __name__ == "__main__":
    sys.exit(main())
