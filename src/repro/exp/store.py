"""JSON-lines result store: the machine-readable form of a sweep.

``repro experiments --out results.jsonl`` writes one canonical
:class:`~repro.core.registry.ExperimentResult` JSON object per line.
The EXPERIMENTS.md-style tables are a *rendering* of this store, not
the other way round — regenerate them any time with::

    python -m repro.exp.store results.jsonl             # text tables
    python -m repro.exp.store results.jsonl --markdown  # Markdown tables

Lines are canonical (sorted keys, no whitespace), so a store written
from a deterministic run is itself byte-for-byte reproducible and
diff-friendly.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Union

from ..core.registry import ExperimentResult
from ..core.render import render_report

__all__ = ["write_jsonl", "read_jsonl", "iter_jsonl", "render_store"]


def write_jsonl(path: Union[str, Path],
                results: Iterable[ExperimentResult]) -> Path:
    """Write ``results`` as canonical JSON-lines; returns the path."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    text = "".join(r.to_json() + "\n" for r in results)
    path.write_text(text)
    return path


def iter_jsonl(path: Union[str, Path]) -> Iterator[ExperimentResult]:
    """Yield results from a JSON-lines store, skipping blank lines."""
    for line in Path(path).read_text().splitlines():
        if line.strip():
            yield ExperimentResult.from_json(line)


def read_jsonl(path: Union[str, Path]) -> List[ExperimentResult]:
    return list(iter_jsonl(path))


def render_store(path: Union[str, Path], markdown: bool = False) -> str:
    """All tables in the store, rendered as text or Markdown."""
    return render_report(read_jsonl(path), markdown=markdown)


def main(argv=None) -> int:
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("store", help="JSON-lines results file")
    parser.add_argument("--markdown", action="store_true",
                        help="render Markdown tables instead of text")
    args = parser.parse_args(argv)
    print(render_store(args.store, markdown=args.markdown))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
