"""repro.exp — the parallel experiment engine.

Composable, individually testable pieces:

* :mod:`repro.exp.scheduler` — :func:`run_experiments`: resolves ids,
  consults the cache, decomposes the rest into tasks and reassembles
  backend outcomes in deterministic order: every backend and worker
  count is byte-identical to a serial run;
* :mod:`repro.exp.planner` — task decomposition, the stable shard
  hash, and the one task body every backend executes;
* :mod:`repro.exp.backends` — where tasks run: the local process pool
  (default), socket workers on any hosts (``repro worker``), or a dry
  run that only plans;
* :mod:`repro.exp.leases` / :mod:`repro.exp.protocol` /
  :mod:`repro.exp.worker` — the distributed substrate: lease
  bookkeeping with heartbeats and reassignment, the length-prefixed
  JSON wire protocol, and the worker process;
* :mod:`repro.exp.cache` — :class:`ResultCache`, an on-disk
  content-addressed cache keyed on experiment id + quick/full flag +
  package version + source digest, making unchanged experiments free
  to re-run; :class:`CellCache` is its per-row sibling that socket
  workers share over the wire;
* :mod:`repro.exp.store` — a JSON-lines results store that
  EXPERIMENTS.md-style tables are rendered from;
* :mod:`repro.exp.chaos` / :mod:`repro.exp.journal` — robustness
  tooling: deterministic harness-level fault injection on the wire
  (:class:`ChaosPlan` + :class:`ChaosProxy`) and the durable
  write-ahead run journal behind ``--resume`` (:class:`RunJournal`).

Typical use (what ``repro experiments --jobs 4 --cache --out r.jsonl``
does)::

    from repro.exp import ResultCache, run_experiments, write_jsonl
    results = run_experiments(["fig04a", "fig05a"], quick=True, jobs=4,
                              cache=ResultCache())
    write_jsonl("r.jsonl", results)
"""

from .backends import (BACKENDS, DryRunBackend, ExecutionBackend,
                       LocalPoolBackend, NoWorkersError,
                       SocketWorkerBackend, TaskOutcome, create_backend)
from .cache import DEFAULT_CACHE_DIR, CellCache, ResultCache, source_digest
from .chaos import ChaosError, ChaosPlan, ChaosProxy
from .journal import JournalError, ResumeError, RunJournal, plan_digest
from .scheduler import ExperimentFailure, run_experiments
from .store import iter_jsonl, read_jsonl, render_store, write_jsonl

__all__ = ["run_experiments", "ExperimentFailure", "ResultCache",
           "CellCache", "DEFAULT_CACHE_DIR", "source_digest",
           "write_jsonl", "read_jsonl", "iter_jsonl", "render_store",
           "ExecutionBackend", "TaskOutcome", "LocalPoolBackend",
           "SocketWorkerBackend", "DryRunBackend", "BACKENDS",
           "create_backend", "NoWorkersError", "ChaosError", "ChaosPlan",
           "ChaosProxy", "JournalError", "ResumeError", "RunJournal",
           "plan_digest"]
