"""repro.exp — the parallel experiment engine.

Three pieces, composable and individually testable:

* :mod:`repro.exp.scheduler` — :func:`run_experiments`, a process-pool
  runner fanning experiment ids (and the row-cells of the big sweeps)
  out to workers, with results reassembled in deterministic order:
  ``--jobs N`` output is byte-identical to a serial run;
* :mod:`repro.exp.cache` — :class:`ResultCache`, an on-disk
  content-addressed cache keyed on experiment id + quick/full flag +
  package version + source digest, making unchanged experiments free
  to re-run;
* :mod:`repro.exp.store` — a JSON-lines results store that
  EXPERIMENTS.md-style tables are rendered from.

Typical use (what ``repro experiments --jobs 4 --cache --out r.jsonl``
does)::

    from repro.exp import ResultCache, run_experiments, write_jsonl
    results = run_experiments(["fig04a", "fig05a"], quick=True, jobs=4,
                              cache=ResultCache())
    write_jsonl("r.jsonl", results)
"""

from .cache import DEFAULT_CACHE_DIR, ResultCache, source_digest
from .scheduler import ExperimentFailure, run_experiments
from .store import iter_jsonl, read_jsonl, render_store, write_jsonl

__all__ = ["run_experiments", "ExperimentFailure", "ResultCache",
           "DEFAULT_CACHE_DIR", "source_digest", "write_jsonl",
           "read_jsonl", "iter_jsonl", "render_store"]
