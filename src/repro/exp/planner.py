"""Task planning for the experiment engine: decomposition and sharding.

The scheduler used to own three jobs at once — deciding *what* the
units of work are, *where* they run, and *how* failures are retried.
This module is the first job, pulled out so every execution backend
(:mod:`repro.exp.backends`) agrees on it:

* a **task** is ``(exp_id, cell_index-or-None)`` — one whole experiment,
  or one row of a :class:`~repro.core.registry.CellPlan` sweep;
* :func:`build_tasks` decomposes a run into tasks in request order,
  which is also the order results are assembled in — backends may
  complete tasks in any order at all;
* :func:`shard_of` assigns a task to one of ``n_shards`` slots by a
  **stable hash of the cell key** (SHA-256 of ``"exp_id#index"``).  The
  assignment depends only on the task identity and the shard count —
  never on worker arrival order, hostnames, or Python's randomized
  ``hash()`` — so two coordinators planning the same sweep for the same
  worker count produce the identical plan;
* :func:`run_task` is the one true task body: every backend (the
  in-process serial path, pool workers, socket workers on other hosts)
  executes exactly this function, which is what makes their outputs
  byte-identical.

Determinism note: sharding decides *placement*, not *results*.  Results
are reassembled in request order by the scheduler whatever the
placement was, so stores are byte-identical for any worker count — the
stable shard hash additionally makes the placement itself reproducible
for operational tooling (dry-run plans, lease logs).
"""

from __future__ import annotations

import contextlib
import hashlib
import signal
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import registry

__all__ = ["Task", "RunContext", "task_key", "build_tasks", "shard_of",
           "plan_shards", "run_task"]

#: One unit of backend work: ``(exp_id, cell_index-or-None)``.
Task = Tuple[str, Optional[int]]


def task_key(task: Task) -> str:
    """Canonical string identity of a task (``"fig04a#2"``, ``"table1"``)."""
    exp_id, index = task
    return exp_id if index is None else f"{exp_id}#{index}"


@dataclass(frozen=True)
class RunContext:
    """Everything a worker needs to execute a task faithfully.

    Shipped verbatim to socket workers in the WELCOME message, so it
    must stay JSON-representable.
    """

    quick: bool = True
    observe: bool = False
    faults_spec: Optional[str] = None
    timeout_s: Optional[float] = None
    flow_mode: Optional[str] = None
    retries: int = 0
    backoff_s: float = 0.5

    def to_wire(self) -> Dict:
        return {"quick": self.quick, "observe": self.observe,
                "faults": self.faults_spec, "timeout_s": self.timeout_s,
                "flow": self.flow_mode}

    @classmethod
    def from_wire(cls, data: Dict) -> "RunContext":
        return cls(quick=bool(data.get("quick", True)),
                   observe=bool(data.get("observe", False)),
                   faults_spec=data.get("faults"),
                   timeout_s=data.get("timeout_s"),
                   flow_mode=data.get("flow"))


def build_tasks(exp_ids: Sequence[str], quick: bool) -> List[Task]:
    """Decompose ``exp_ids`` (request order) into backend tasks.

    Cell-decomposed sweeps contribute one task per row; everything else
    is a single whole-experiment task.
    """
    tasks: List[Task] = []
    for exp_id in exp_ids:
        n = registry.n_cells(exp_id, quick)
        if n:
            tasks.extend((exp_id, i) for i in range(n))
        else:
            tasks.append((exp_id, None))
    return tasks


def shard_of(task: Task, n_shards: int) -> int:
    """Stable shard slot of ``task`` among ``n_shards``.

    SHA-256 of the cell key, reduced mod ``n_shards``: independent of
    worker arrival order, process boundaries and ``PYTHONHASHSEED``.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    digest = hashlib.sha256(task_key(task).encode()).digest()
    return int.from_bytes(digest[:8], "big") % n_shards


def plan_shards(tasks: Sequence[Task], n_shards: int) -> List[List[Task]]:
    """Tasks grouped by shard slot, request order preserved per shard.

    A pure function of (task set, shard count): shuffling the worker
    arrival order — or calling this twice — cannot change it.
    """
    shards: List[List[Task]] = [[] for _ in range(n_shards)]
    for task in tasks:
        shards[shard_of(task, n_shards)].append(task)
    return shards


# -- the one true task body (runs in pool workers, socket workers, and
#    in-process for the serial path) ----------------------------------------

def _raise_timeout(signum, frame):
    raise TimeoutError("experiment task exceeded its time budget")


@contextlib.contextmanager
def worker_env(faults_spec: Optional[str], timeout_s: Optional[float],
               flow_mode: Optional[str] = None):
    """Worker-side task context: fault spec, flow mode + wall-clock alarm.

    The fault spec and flow mode are always (re)applied — workers are
    reused across tasks, so leftover state from a previous task must
    never leak.  The alarm uses ``SIGALRM`` where available (main thread
    on POSIX); elsewhere tasks simply run unbounded.
    """
    from ..faults.context import set_active_spec
    from ..flow.context import set_flow_mode
    previous = set_active_spec(faults_spec)
    previous_flow = set_flow_mode(flow_mode)
    use_alarm = (timeout_s is not None and hasattr(signal, "setitimer")
                 and threading.current_thread() is threading.main_thread())
    if use_alarm:
        old_handler = signal.signal(signal.SIGALRM, _raise_timeout)
        old_timer = signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, *old_timer)
            signal.signal(signal.SIGALRM, old_handler)
        set_flow_mode(previous_flow)
        set_active_spec(previous)


def _observed(fn, *args):
    """Run ``fn(*args)`` under a fresh registry; return (value, snapshot)."""
    from ..obs import MetricsRegistry, use_registry
    reg = MetricsRegistry()
    with use_registry(reg):
        value = fn(*args)
    return value, reg.to_dict()


def run_task(task: Task, ctx: RunContext):
    """Execute one task under ``ctx``; returns ``(payload, snapshot)``.

    The payload is JSON-representable by construction — canonical
    result JSON for whole experiments, the plain row list for cells —
    so it crosses process and host boundaries without losing a byte.
    """
    exp_id, index = task
    with worker_env(ctx.faults_spec, ctx.timeout_s, ctx.flow_mode):
        if index is None:
            if ctx.observe:
                result, snap = _observed(registry.run_experiment,
                                         exp_id, ctx.quick)
                return result.to_json(), snap
            return registry.run_experiment(exp_id, ctx.quick).to_json(), None
        if ctx.observe:
            row, snap = _observed(registry.run_cell, exp_id, ctx.quick, index)
            return list(row), snap
        return list(registry.run_cell(exp_id, ctx.quick, index)), None
