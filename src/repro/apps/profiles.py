"""NAS parallel benchmark communication profiles (class B).

The paper (§3.5) explains the WAN behaviour of the NAS codes entirely by
their message-size mix: IS and FT are dominated by large messages (100 %
and 83 % respectively) and tolerate WAN delay; CG is all small/medium
messages (everything under 1 MB) and degrades sharply.

These profiles encode, per benchmark, the class-B communication
structure for a given rank count and a calibrated per-iteration compute
time.  The skeletons in :mod:`repro.apps.nas` execute them against the
simulated MPI library, so the runtime-vs-delay curves emerge from the
protocol dynamics rather than being scripted.

Data-volume derivations (class B, P ranks):

* **IS** — 2^25 4-byte keys, 10 ranking iterations.  Each iteration does
  a small allreduce of bucket counts then an all-to-all-v redistributing
  all keys: ~``2^27 / P`` bytes per rank spread over P-1 peers.
* **FT** — 512x256x256 complex grid (16 B/point), 20 iterations, one
  global transpose (all-to-all) per iteration moving the whole
  ~2.1 GB grid: ``grid / P`` bytes per rank, ``grid / P^2`` per peer.
* **CG** — n = 75000, 75 CG iterations, ~25 inner products each.  On a
  P = r x r processor grid each inner step exchanges ~``8 * n / r`` bytes
  with the row neighbour and runs an 8-byte reduction down the row.
* **MG** / **EP** — extra benchmarks from the suite: MG mixes short
  boundary exchanges of varying sizes; EP only communicates at the end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["NASProfile", "nas_profile", "NAS_BENCHMARKS",
           "message_size_distribution"]

MB = 1024 * 1024


@dataclass(frozen=True)
class NASProfile:
    """One benchmark's per-iteration communication recipe."""

    name: str
    #: Outer iterations of the time-stepped loop.
    iterations: int
    #: Compute time per rank per iteration, µs (class-B calibration for
    #: ~2008 Xeon nodes; affects absolute runtime, not the delay shape).
    compute_us_per_iter: float
    #: alltoall per-peer bytes per iteration (0 = none).
    alltoall_per_peer: int = 0
    #: allreduce payload bytes per iteration and how many of them.
    allreduce_bytes: int = 0
    allreduce_count: int = 0
    #: neighbour exchanges: (bytes, exchanges_per_iteration).
    neighbor_bytes: int = 0
    neighbor_count: int = 0
    #: fraction of traffic the paper classes as "large" (>= 64 KB).
    paper_large_fraction: float = 0.0


def nas_profile(name: str, ranks: int, scale: float = 1.0) -> NASProfile:
    """Class-B profile for ``name`` on ``ranks`` ranks.

    ``scale`` < 1 shrinks iteration counts proportionally (documented
    bench-time reduction; per-message sizes are never scaled, because
    the sizes are what determine WAN behaviour).
    """
    name = name.upper()
    if ranks < 2:
        raise ValueError("NAS profiles need at least 2 ranks")

    def iters(n: int) -> int:
        return max(1, round(n * scale))

    if name == "IS":
        total_keys_bytes = (2 ** 25) * 4
        per_peer = max(1, 4 * total_keys_bytes // ranks // ranks)
        return NASProfile(
            name="IS", iterations=iters(10),
            compute_us_per_iter=230000.0 / (ranks / 64),
            alltoall_per_peer=per_peer,
            allreduce_bytes=1024, allreduce_count=1,
            paper_large_fraction=1.0)
    if name == "FT":
        grid_bytes = 512 * 256 * 256 * 16
        per_peer = max(1, grid_bytes // (ranks * ranks))
        return NASProfile(
            name="FT", iterations=iters(20),
            compute_us_per_iter=1900000.0 / (ranks / 64),
            alltoall_per_peer=per_peer,
            allreduce_bytes=16, allreduce_count=1,
            paper_large_fraction=0.83)
    if name == "CG":
        import math
        row = int(math.sqrt(ranks))
        n = 75000
        exchange = 8 * n // max(1, row)
        # 25 cgit steps per outer iteration, each with two transpose
        # exchanges and two scalar reductions, all data-dependent.
        inner = 50
        return NASProfile(
            name="CG", iterations=iters(75),
            compute_us_per_iter=250000.0 / (ranks / 64),
            neighbor_bytes=exchange, neighbor_count=inner,
            allreduce_bytes=8, allreduce_count=inner,
            paper_large_fraction=0.0)
    if name == "MG":
        return NASProfile(
            name="MG", iterations=iters(20),
            compute_us_per_iter=320000.0 / (ranks / 64),
            neighbor_bytes=32768, neighbor_count=12,
            allreduce_bytes=8, allreduce_count=2,
            paper_large_fraction=0.1)
    if name == "LU":
        # SSOR wavefront sweeps: many tiny (~1-40 KB) pipelined
        # north/south exchanges per time step -- latency-bound like CG.
        return NASProfile(
            name="LU", iterations=iters(50),
            compute_us_per_iter=380000.0 / (ranks / 64),
            neighbor_bytes=20480, neighbor_count=40,
            allreduce_bytes=40, allreduce_count=2,
            paper_large_fraction=0.0)
    if name == "EP":
        return NASProfile(
            name="EP", iterations=iters(1),
            compute_us_per_iter=5200000.0 / (ranks / 64),
            allreduce_bytes=80, allreduce_count=3,
            paper_large_fraction=0.0)
    raise ValueError(f"unknown NAS benchmark {name!r}")


NAS_BENCHMARKS = ("IS", "FT", "CG", "MG", "LU", "EP")


#: Byte boundaries of the paper's small / medium / large message classes.
LARGE_MSG = 128 * 1024
MEDIUM_MSG = 8 * 1024


def message_size_distribution(profile: NASProfile, ranks: int
                              ) -> Dict[str, float]:
    """Fraction of moved bytes in small/medium/large classes per iteration
    (the profiling the paper reports in §3.5)."""
    large = medium = small = 0
    if profile.alltoall_per_peer:
        vol = profile.alltoall_per_peer * (ranks - 1)
        if profile.alltoall_per_peer >= LARGE_MSG:
            large += vol
        elif profile.alltoall_per_peer >= MEDIUM_MSG:
            medium += vol
        else:
            small += vol
    if profile.neighbor_bytes:
        vol = profile.neighbor_bytes * profile.neighbor_count
        if profile.neighbor_bytes >= LARGE_MSG:
            large += vol
        elif profile.neighbor_bytes >= MEDIUM_MSG:
            medium += vol
        else:
            small += vol
    small += profile.allreduce_bytes * profile.allreduce_count
    total = max(1, small + medium + large)
    return {"small": small / total, "medium": medium / total,
            "large": large / total}
