"""NAS parallel benchmark communication skeletons."""

from .nas import NASResult, run_nas
from .profiles import (NAS_BENCHMARKS, NASProfile, message_size_distribution,
                       nas_profile)

__all__ = ["run_nas", "NASResult", "nas_profile", "NASProfile",
           "NAS_BENCHMARKS", "message_size_distribution"]
