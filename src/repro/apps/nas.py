"""NAS parallel benchmark skeletons on the simulated MPI library.

Each benchmark runs its class-B communication structure (profiles in
:mod:`repro.apps.profiles`) over the simulated cluster-of-clusters, so
the runtime-vs-WAN-delay behaviour of Fig. 12 — IS/FT tolerant, CG
degrading — emerges from the protocol dynamics:

* IS/FT's bulk all-to-alls are posted concurrently, so they are
  bandwidth-bound and nearly delay-insensitive;
* CG's inner loop is a chain of data-dependent transpose exchanges and
  8-byte reductions, so every inner step eats a WAN round trip.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..fabric.topology import Fabric
from ..mpi.collectives import allreduce, alltoall, barrier
from ..mpi.runtime import MPIJob
from ..mpi.tuning import DEFAULT_TUNING, MPITuning
from ..sim import Simulator
from .profiles import NASProfile, nas_profile

__all__ = ["NASResult", "run_nas"]


@dataclass
class NASResult:
    """Outcome of one NAS run."""

    benchmark: str
    ranks: int
    iterations: int
    runtime_us: float
    compute_us: float

    @property
    def runtime_s(self) -> float:
        return self.runtime_us * 1e-6

    @property
    def comm_fraction(self) -> float:
        """Fraction of runtime not covered by the compute phases."""
        return max(0.0, 1.0 - self.compute_us / self.runtime_us)


def _transpose_partner(rank: int, grid: int) -> int:
    row, col = divmod(rank, grid)
    return col * grid + row


def _nas_program(sim: Simulator, profile: NASProfile, grid: int):
    """Factory for one rank's program."""

    def prog(proc):
        n = proc.job.size
        yield from barrier(proc)
        t0 = sim.now
        for _ in range(profile.iterations):
            if profile.compute_us_per_iter > 0:
                # Compute splits around the communication phases.
                yield from proc.compute(profile.compute_us_per_iter / 2)
            if profile.alltoall_per_peer:
                yield from alltoall(proc, profile.alltoall_per_peer)
            for _ in range(profile.neighbor_count):
                partner = _transpose_partner(proc.rank, grid)
                if partner != proc.rank:
                    yield from proc.sendrecv(partner, profile.neighbor_bytes)
                if profile.allreduce_bytes and profile.allreduce_count:
                    row = proc.rank // grid
                    row_ranks = list(range(row * grid, (row + 1) * grid))
                    yield from allreduce(proc, profile.allreduce_bytes,
                                         ranks=row_ranks)
            if (profile.allreduce_bytes and profile.allreduce_count
                    and not profile.neighbor_count):
                for _ in range(profile.allreduce_count):
                    yield from allreduce(proc, profile.allreduce_bytes)
            if profile.compute_us_per_iter > 0:
                yield from proc.compute(profile.compute_us_per_iter / 2)
        yield from barrier(proc)
        return sim.now - t0

    return prog


def run_nas(sim: Simulator, fabric: Fabric, benchmark: str,
            ppn: int = 1, scale: float = 1.0,
            tuning: MPITuning = DEFAULT_TUNING) -> NASResult:
    """Run one NAS benchmark skeleton across the fabric.

    ``scale`` shrinks the iteration count (never message sizes) so
    benchmark runs stay tractable; runtime scales proportionally, and
    the delay *slowdown ratio* — what Fig. 12 is about — is unaffected.
    """
    job = MPIJob(fabric, ppn=ppn, placement="block", tuning=tuning)
    profile = nas_profile(benchmark, job.size, scale)
    grid = int(math.sqrt(job.size))
    if grid * grid != job.size and profile.neighbor_count:
        raise ValueError(
            f"{benchmark} needs a square rank count, got {job.size}")
    runtimes = job.run(_nas_program(sim, profile, grid))
    return NASResult(
        benchmark=profile.name, ranks=job.size,
        iterations=profile.iterations,
        runtime_us=max(runtimes),
        compute_us=profile.compute_us_per_iter * profile.iterations)
