"""Distance <-> delay mapping (paper Table 1).

The Obsidian Longbow XR's web interface takes a delay; the paper uses
5 µs of one-way delay per kilometre of fibre (speed of light in glass),
i.e. each microsecond of configured delay emulates 200 m of separation.
"""

from __future__ import annotations

from typing import List, Tuple

from ..calibration import US_PER_KM

__all__ = ["delay_for_distance_km", "distance_km_for_delay", "TABLE1_ROWS",
           "table1"]


def delay_for_distance_km(km: float) -> float:
    """One-way WAN delay in µs emulating ``km`` of fibre."""
    if km < 0:
        raise ValueError("distance must be >= 0")
    return km * US_PER_KM


def distance_km_for_delay(delay_us: float) -> float:
    """Emulated fibre length in km for a one-way delay in µs."""
    if delay_us < 0:
        raise ValueError("delay must be >= 0")
    return delay_us / US_PER_KM


#: The cluster separations the paper studies (Table 1).
TABLE1_ROWS: List[Tuple[float, float]] = [
    (1.0, 5.0),
    (2.0, 10.0),
    (20.0, 100.0),
    (200.0, 1000.0),
    (2000.0, 10000.0),
]


def table1() -> List[Tuple[float, float]]:
    """Regenerate Table 1: (distance km, delay µs) pairs."""
    return [(km, delay_for_distance_km(km)) for km, _ in TABLE1_ROWS]
