"""Obsidian Longbow XR model.

A Longbow pair extends an IB subnet over a WAN link.  In "basic switch
mode" each unit appears to the subnet manager as a transparent two-ported
switch (paper §2.2): everything arriving on the IB port is forwarded to
the WAN port and vice versa, with

* a fixed store-and-forward latency per unit (the pair adds ~5 µs total),
* an SDR-rate WAN link whose propagation delay is configurable — the
  delay-emulation knob the paper drives all its experiments with, and
* a deep buffer-credit pool: a unit only pushes a frame onto the WAN once
  the peer has buffer space, and credit is returned when the peer
  forwards the frame onward.  The pool is sized to cover the
  bandwidth-delay product of long pipes (Obsidian's headline feature);
  it can be shrunk to study credit-starved links.
"""

from __future__ import annotations

from typing import List, Optional

from ..calibration import HardwareProfile
from ..fabric.link import Link
from ..fabric.packet import Frame
from ..sim import URGENT, Simulator, Store

__all__ = ["Longbow", "LongbowPair"]

#: Kill switch for the WAN pump's direct-continue inner loop, flipped
#: only by :func:`repro.sim._legacy.legacy_dispatch` (see
#: ``repro.fabric.link._FAST_PUMP``).
_FAST_PUMP = True


class Longbow:
    """One Longbow unit: IB port + WAN port, pass-through forwarding."""

    #: Longbows forward cut-through like switches (see repro.fabric.link).
    cut_through = True

    def __init__(self, sim: Simulator, profile: HardwareProfile,
                 name: str = "longbow"):
        self.sim = sim
        self.profile = profile
        self.name = name
        self.lid: int = -1  # transparent, but the SM still counts it
        self.ib_link: Optional[Link] = None
        self.wan_link: Optional[Link] = None
        self.peer: Optional["Longbow"] = None
        #: Remaining buffer bytes at the *peer* we may still occupy.
        self.credits: int = profile.longbow_buffer_bytes
        self._credit_waiters: List = []
        self._to_wan: Store = Store(sim)
        self.frames_forwarded = 0
        #: Fault injection: cap on bytes queued toward the WAN port.
        #: ``None`` (the default) models the deep production buffer;
        #: see :meth:`set_ingress_limit`.
        self.ingress_limit_bytes: Optional[int] = None
        self._ingress_bytes = 0
        self.frames_dropped_overrun = 0
        self._m_overrun = None
        self._pool = profile.longbow_buffer_bytes
        self._pending_frame: Optional[Frame] = None
        # Mode selection, same contract as the link pump: metrics-free
        # runs drive the WAN port with a callback state machine that
        # reproduces the generator's event trajectory exactly (one
        # URGENT kick-off pop, one StoreGet pop per frame, one Event
        # pop per credit wait); instrumented runs keep the generator so
        # queue-depth gauges and resume counters stay on their
        # historical trajectories.
        self._fast = _FAST_PUMP and getattr(sim, "metrics", None) is None
        if self._fast:
            sim.call_at(0.0, self._next_wan_frame, priority=URGENT,
                        cancellable=False)
        else:
            sim.process(self._wan_pump(), name=f"{name}.pump")

    # -- wiring ----------------------------------------------------------
    def attach_ib(self, link: Link) -> None:
        self.ib_link = link

    def attach_wan(self, link: Link, peer: "Longbow") -> None:
        self.wan_link = link
        self.peer = peer

    def set_ingress_limit(self, limit_bytes: int) -> None:
        """Shrink the IB→WAN ingress buffer (fault injection).

        Frames arriving on the IB port while ``limit_bytes`` are already
        queued are dropped — a buffer overrun on an overdriven extender.
        The metric series registers here, never at construction, so
        clean runs stay byte-identical.
        """
        if limit_bytes <= 0:
            raise ValueError("ingress limit must be > 0 bytes")
        self.ingress_limit_bytes = limit_bytes
        m = getattr(self.sim, "metrics", None)
        if m is not None and self._m_overrun is None:
            self._m_overrun = m.counter("faults", "frames_dropped",
                                        longbow=self.name, cause="overrun")

    # -- forwarding ---------------------------------------------------------
    def receive_frame(self, frame: Frame, link: Link) -> None:
        if link is self.wan_link:
            # Frame crossed the WAN: hand buffer credit back to the peer
            # and forward onto the local IB fabric.
            self.peer._release_credit(frame.wire_bytes)
            self.frames_forwarded += 1
            self._forward_after(frame, self.ib_link)
        elif link is self.ib_link:
            if self.ingress_limit_bytes is not None:
                if (self._ingress_bytes + frame.wire_bytes
                        > self.ingress_limit_bytes):
                    self.frames_dropped_overrun += 1
                    if self._m_overrun is not None:
                        self._m_overrun.inc()
                    return
                self._ingress_bytes += frame.wire_bytes
            self._to_wan.put(frame)
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"{self.name}: frame from unknown link")

    # -- callback-mode pump (no metrics) --------------------------------
    # Mirrors _wan_pump() step for step at identical simulated instants
    # and heap seqs; see repro.fabric.link for the pattern.

    def _next_wan_frame(self) -> None:
        to_wan = self._to_wan
        on_frame = self._on_wan_frame
        while True:
            get = to_wan.get()
            if not get.triggered:
                get.callbacks.append(self._on_wan_get)
                return
            if on_frame(get._value):
                return
            # Frame forwarded instantly; pull the next one now, just as
            # the generator's loop would.

    def _on_wan_get(self, event) -> None:
        if not self._on_wan_frame(event._value):
            self._next_wan_frame()

    def _on_wan_frame(self, frame: Frame) -> bool:
        """Returns True when waiting on credit, False once forwarded."""
        if self.ingress_limit_bytes is not None:
            self._ingress_bytes -= frame.wire_bytes
        needed = min(frame.wire_bytes, self._pool)
        if self.credits < needed:
            self._pending_frame = frame
            waiter = self.sim.event()
            waiter.callbacks.append(self._on_credit)
            self._credit_waiters.append(waiter)
            return True
        self.credits -= frame.wire_bytes
        self.frames_forwarded += 1
        self._forward_after(frame, self.wan_link)
        return False

    def _on_credit(self, _event) -> None:
        frame = self._pending_frame
        needed = min(frame.wire_bytes, self._pool)
        if self.credits < needed:
            # Still short: queue another waiter, exactly like the
            # generator's while-loop would.
            waiter = self.sim.event()
            waiter.callbacks.append(self._on_credit)
            self._credit_waiters.append(waiter)
            return
        self._pending_frame = None
        self.credits -= frame.wire_bytes
        self.frames_forwarded += 1
        self._forward_after(frame, self.wan_link)
        self._next_wan_frame()

    # -- generator-mode pump (metrics / legacy dispatch) ----------------
    def _wan_pump(self):
        pool = self._pool
        to_wan = self._to_wan
        while True:
            frame = yield to_wan.get()
            if self.ingress_limit_bytes is not None:
                self._ingress_bytes -= frame.wire_bytes
            # A frame larger than the whole pool streams through once the
            # buffer is fully drained (packet-granular hardware never
            # deadlocks on one big message).
            needed = min(frame.wire_bytes, pool)
            while self.credits < needed:
                waiter = self.sim.event()
                self._credit_waiters.append(waiter)
                yield waiter
            self.credits -= frame.wire_bytes
            self.frames_forwarded += 1
            self._forward_after(frame, self.wan_link)

    def _forward_after(self, frame: Frame, link: Link) -> None:
        self.sim.call_at(self.profile.longbow_forward_us, self._send_on,
                         (link, frame), cancellable=False)

    def _send_on(self, pair) -> None:
        link, frame = pair
        link.send(self, frame)

    def _release_credit(self, nbytes: int) -> None:
        self.credits += nbytes
        waiters, self._credit_waiters = self._credit_waiters, []
        for w in waiters:
            w.succeed()


class LongbowPair:
    """Two Longbows joined by a WAN link with a configurable delay."""

    def __init__(self, sim: Simulator, profile: HardwareProfile,
                 delay_us: float = 0.0, name: str = "wan"):
        self.sim = sim
        self.profile = profile
        self.a = Longbow(sim, profile, name=f"{name}.lb_a")
        self.b = Longbow(sim, profile, name=f"{name}.lb_b")
        self.wan_link = Link(sim, rate=profile.wan_rate, delay_us=delay_us,
                             name=f"{name}.link")
        self.wan_link.attach(self.a, self.b)
        self.a.attach_wan(self.wan_link, self.b)
        self.b.attach_wan(self.wan_link, self.a)

    @property
    def delay_us(self) -> float:
        return self.wan_link.delay_us

    def set_delay(self, delay_us: float) -> None:
        """The web-interface knob: one-way added delay in µs."""
        self.wan_link.set_delay(delay_us)

    @property
    def bytes_carried(self) -> int:
        return self.wan_link.bytes_carried
