"""InfiniBand WAN range extension (Obsidian Longbow XR model)."""

from .delaymap import (TABLE1_ROWS, delay_for_distance_km,
                       distance_km_for_delay, table1)
from .longbow import Longbow, LongbowPair

__all__ = ["Longbow", "LongbowPair", "delay_for_distance_km",
           "distance_km_for_delay", "table1", "TABLE1_ROWS"]
