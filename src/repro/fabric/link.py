"""Point-to-point links.

A :class:`Link` joins two devices with a full-duplex pipe.  Each
direction is an independent :class:`_HalfLink` that serializes queued
frames at the link data rate and delivers them after the propagation
delay.  Serialization is sequential (the wire is busy for
``wire_bytes / rate`` µs per frame); propagation overlaps, so back-to-back
frames pipeline exactly as on a real wire.
"""

from __future__ import annotations

from typing import Optional, Protocol

import itertools

from ..sim import PriorityStore, Simulator
from .packet import Frame

__all__ = ["Link", "LinkEndpoint", "CUT_THROUGH_BYTES"]

#: Bytes a cut-through device latches before forwarding (one IB MTU
#: packet + headers).  Endpoints with a truthy ``cut_through`` attribute
#: (switches, Longbows) receive a frame after this much serialization,
#: while the link stays busy for the frame's full wire time — so
#: contention is exact and large messages pipeline across hops as on
#: real cut-through fabrics.  Destination HCAs always wait for the last
#: byte.
CUT_THROUGH_BYTES = 2078


class LinkEndpoint(Protocol):
    """Anything that can terminate a link (HCA, switch port, Longbow)."""

    def receive_frame(self, frame: Frame, link: "Link") -> None: ...


class _HalfLink:
    """One direction of a link: FIFO queue -> serialization -> delivery."""

    def __init__(self, sim: Simulator, rate: float, delay_us: float,
                 name: str):
        if rate <= 0:
            raise ValueError("link rate must be positive")
        if delay_us < 0:
            raise ValueError("propagation delay must be >= 0")
        self.sim = sim
        self.rate = rate
        self.delay_us = delay_us
        #: Fault injection: probability a frame is silently dropped
        #: after serialization (bit-error model; exercises RC recovery).
        self.loss_rate = 0.0
        #: Optional ``random.Random`` powering loss/jitter decisions.
        self.rng = None
        #: Uniform extra per-frame delay bound (dispersion jitter), µs.
        self.jitter_us = 0.0
        #: Armed :class:`repro.faults.injector.LinkFaultInjector`, or
        #: ``None`` — the pump takes the exact pre-fault path then.
        self.faults = None
        self.frames_dropped = 0
        self._min_next_delivery = 0.0
        self.name = name
        # Weighted arbitration: control frames (priority 0) overtake
        # queued bulk data, approximating per-packet interleaving.
        self.queue: PriorityStore = PriorityStore(sim)
        self._seq = itertools.count()
        self.endpoint: Optional[LinkEndpoint] = None
        self.parent: Optional["Link"] = None
        self.bytes_carried = 0
        self.frames_carried = 0
        m = getattr(sim, "metrics", None)
        if m is not None:
            self._m_bytes = m.counter("link", "bytes", link=name)
            self._m_frames = m.counter("link", "frames", link=name)
            self._m_busy_us = m.counter("link", "busy_us", link=name)
            self._m_qdelay = m.histogram("link", "queue_delay_us", link=name)
        else:
            self._m_bytes = self._m_frames = None
            self._m_busy_us = self._m_qdelay = None
        sim.process(self._pump(), name=f"link:{name}")

    def put(self, frame: Frame) -> None:
        self.queue.put((frame.priority, next(self._seq), frame,
                        self.sim.now))

    def _pump(self):
        while True:
            _prio, _seq, frame, enqueued_at = yield self.queue.get()
            faults = self.faults
            if faults is not None and faults.is_down(self.sim.now):
                # Link flap, queue-drain semantics: the laser is off, so
                # the frame vanishes instantly without occupying the wire.
                self.frames_dropped += 1
                faults.count_flap_drop()
                continue
            ser = frame.wire_bytes / self.rate
            if self._m_qdelay is not None:
                self._m_qdelay.observe(self.sim.now - enqueued_at)
                self._m_busy_us.inc(ser)
            if self.loss_rate and self.rng is not None \
                    and self.rng.random() < self.loss_rate:
                yield self.sim.timeout(ser)  # the wire was still busy
                self.frames_dropped += 1
                continue
            if faults is not None and faults.should_drop(self.name):
                yield self.sim.timeout(ser)  # the wire was still busy
                self.frames_dropped += 1
                continue
            if self.jitter_us and self.rng is not None:
                # dispersion jitter delays delivery, not the wire
                extra = self.rng.uniform(0.0, self.jitter_us)
            else:
                extra = 0.0
            if faults is not None:
                extra += faults.extra_delay(self.sim.now)
            if getattr(self.endpoint, "cut_through", False):
                # Hand off after one packet's worth of bytes; the wire
                # stays busy for the full serialization below.
                handoff = min(ser, CUT_THROUGH_BYTES / self.rate)
                self._schedule_delivery(frame, handoff + self.delay_us
                                        + extra)
                yield self.sim.timeout(ser)
            else:
                yield self.sim.timeout(ser)
                self._schedule_delivery(frame, self.delay_us + extra)
            self.bytes_carried += frame.wire_bytes
            self.frames_carried += 1
            if self._m_bytes is not None:
                self._m_bytes.inc(frame.wire_bytes)
                self._m_frames.inc()

    def _schedule_delivery(self, frame: Frame, delay: float) -> None:
        # Jitter must never reorder frames (RC assumes FIFO wires):
        # delivery times are clamped to be non-decreasing.
        at = max(self.sim.now + delay, self._min_next_delivery)
        self._min_next_delivery = at
        deliver = self.sim.event()
        deliver.callbacks.append(self._make_delivery(frame))
        deliver.succeed(None, delay=at - self.sim.now)

    def _make_delivery(self, frame: Frame):
        def _deliver(_event):
            frame.hops += 1
            self.endpoint.receive_frame(frame, self.parent)
        return _deliver

    @property
    def queued_frames(self) -> int:
        return len(self.queue)


class Link:
    """Full-duplex link between endpoints ``a`` and ``b``."""

    def __init__(self, sim: Simulator, rate: float, delay_us: float = 0.0,
                 name: str = "link"):
        self.sim = sim
        self.name = name
        self.rate = rate
        self.delay_us = delay_us
        self._ab = _HalfLink(sim, rate, delay_us, f"{name}.ab")
        self._ba = _HalfLink(sim, rate, delay_us, f"{name}.ba")
        self._ab.parent = self
        self._ba.parent = self
        self.a: Optional[LinkEndpoint] = None
        self.b: Optional[LinkEndpoint] = None

    def attach(self, a: LinkEndpoint, b: LinkEndpoint) -> "Link":
        """Connect the two endpoints; must be called exactly once."""
        if self.a is not None or self.b is not None:
            raise RuntimeError(f"{self.name}: endpoints already attached")
        self.a, self.b = a, b
        self._ab.endpoint = b
        self._ba.endpoint = a
        return self

    def send(self, sender: LinkEndpoint, frame: Frame) -> None:
        """Queue ``frame`` for transmission away from ``sender``."""
        if sender is self.a:
            self._ab.put(frame)
        elif sender is self.b:
            self._ba.put(frame)
        else:
            raise ValueError(f"{sender!r} is not attached to {self.name}")

    def other(self, endpoint: LinkEndpoint) -> LinkEndpoint:
        if endpoint is self.a:
            return self.b
        if endpoint is self.b:
            return self.a
        raise ValueError(f"{endpoint!r} is not attached to {self.name}")

    def set_delay(self, delay_us: float) -> None:
        """Change the propagation delay (the Longbow web-UI knob)."""
        if delay_us < 0:
            raise ValueError("propagation delay must be >= 0")
        self.delay_us = delay_us
        self._ab.delay_us = delay_us
        self._ba.delay_us = delay_us

    def inject_faults(self, rng, loss_rate: float = 0.0,
                      jitter_us: float = 0.0) -> None:
        """Enable uniform loss/jitter on both directions (legacy hook).

        ``rng`` is a ``random.Random`` (use
        :class:`repro.sim.rng.RngRegistry` for reproducibility).  For
        burst loss, flaps, delay spikes and declarative specs use
        :meth:`apply_faults` / :class:`repro.faults.FaultPlan`.
        """
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if jitter_us < 0:
            raise ValueError("jitter_us must be >= 0")
        for half in (self._ab, self._ba):
            half.rng = rng
            half.loss_rate = loss_rate
            half.jitter_us = jitter_us

    def apply_faults(self, plan, rng=None):
        """Arm a :class:`repro.faults.FaultPlan` on this link; returns
        the injector.  Equivalent to ``plan.apply(self, rng)``."""
        return plan.apply(self, rng)

    @property
    def frames_dropped(self) -> int:
        return self._ab.frames_dropped + self._ba.frames_dropped

    @property
    def bytes_carried(self) -> int:
        return self._ab.bytes_carried + self._ba.bytes_carried

    @property
    def frames_carried(self) -> int:
        return self._ab.frames_carried + self._ba.frames_carried
