"""Point-to-point links.

A :class:`Link` joins two devices with a full-duplex pipe.  Each
direction is an independent :class:`_HalfLink` that serializes queued
frames at the link data rate and delivers them after the propagation
delay.  Serialization is sequential (the wire is busy for
``wire_bytes / rate`` µs per frame); propagation overlaps, so back-to-back
frames pipeline exactly as on a real wire.
"""

from __future__ import annotations

import itertools
from typing import Optional, Protocol

from ..sim import URGENT, PriorityStore, ReusableTimeout, Simulator
from .packet import Frame

__all__ = ["Link", "LinkEndpoint", "CUT_THROUGH_BYTES"]

#: Kill switch for the pump's direct-continue inner loop, flipped only
#: by :func:`repro.sim._legacy.legacy_dispatch` so benchmarks and the
#: equivalence tests can measure the pre-fast-path behaviour.
_FAST_PUMP = True

#: Bytes a cut-through device latches before forwarding (one IB MTU
#: packet + headers).  Endpoints with a truthy ``cut_through`` attribute
#: (switches, Longbows) receive a frame after this much serialization,
#: while the link stays busy for the frame's full wire time — so
#: contention is exact and large messages pipeline across hops as on
#: real cut-through fabrics.  Destination HCAs always wait for the last
#: byte.
CUT_THROUGH_BYTES = 2078


class LinkEndpoint(Protocol):
    """Anything that can terminate a link (HCA, switch port, Longbow)."""

    def receive_frame(self, frame: Frame, link: "Link") -> None: ...


class _HalfLink:
    """One direction of a link: FIFO queue -> serialization -> delivery."""

    def __init__(self, sim: Simulator, rate: float, delay_us: float,
                 name: str):
        if rate <= 0:
            raise ValueError("link rate must be positive")
        if delay_us < 0:
            raise ValueError("propagation delay must be >= 0")
        self.sim = sim
        self.rate = rate
        #: Capacity (MB/s) reserved by flow-level traffic; packet frames
        #: serialize at ``rate - flow_reserved`` so flow and packet
        #: traffic share the wire honestly.
        self.flow_reserved = 0.0
        self._eff_rate = rate
        self.delay_us = delay_us
        #: Fault injection: probability a frame is silently dropped
        #: after serialization (bit-error model; exercises RC recovery).
        self.loss_rate = 0.0
        #: Optional ``random.Random`` powering loss/jitter decisions.
        self.rng = None
        #: Uniform extra per-frame delay bound (dispersion jitter), µs.
        self.jitter_us = 0.0
        #: Armed :class:`repro.faults.injector.LinkFaultInjector`, or
        #: ``None`` — the pump takes the exact pre-fault path then.
        self.faults = None
        self.frames_dropped = 0
        self._min_next_delivery = 0.0
        self.name = name
        # Weighted arbitration: control frames (priority 0) overtake
        # queued bulk data, approximating per-packet interleaving.
        self.queue: PriorityStore = PriorityStore(sim)
        self._seq = itertools.count()
        self.endpoint: Optional[LinkEndpoint] = None
        self.parent: Optional["Link"] = None
        self.bytes_carried = 0
        self.frames_carried = 0
        m = getattr(sim, "metrics", None)
        if m is not None:
            self._m_bytes = m.counter("link", "bytes", link=name)
            self._m_frames = m.counter("link", "frames", link=name)
            self._m_busy_us = m.counter("link", "busy_us", link=name)
            self._m_qdelay = m.histogram("link", "queue_delay_us", link=name)
        else:
            self._m_bytes = self._m_frames = None
            self._m_busy_us = self._m_qdelay = None
        #: Mode selection, fixed at construction: with no metrics
        #: registry attached the pump runs as a callback state machine
        #: (:meth:`_next_frame` / :meth:`_on_entry` / :meth:`_finish`)
        #: that produces the exact event trajectory of the generator —
        #: one URGENT kick-off pop, one StoreGet pop and one
        #: serialization pop per frame, at identical ``(time, priority,
        #: seq)`` keys — without any generator resumes.  With metrics
        #: the generator runs so queue-depth gauges, per-process resume
        #: counters and queue-delay histograms keep their exact
        #: historical trajectories.
        self._fast = _FAST_PUMP and m is None
        self._ser_wait = ReusableTimeout(sim)
        if self._fast:
            # Same heap key as Process.__init__'s kick-off event.
            sim.call_at(0.0, self._next_frame, priority=URGENT,
                        cancellable=False)
        else:
            sim.process(self._pump(), name=f"link:{name}")

    def put(self, frame: Frame) -> None:
        self.queue.put((frame.priority, next(self._seq), frame,
                        self.sim.now))

    # -- callback-mode pump (no metrics) --------------------------------
    # Mirrors _pump() below step for step; every rng draw, counter
    # update and scheduling call happens at the same simulated instant
    # and consumes the same heap seq as the generator would, so fault
    # trajectories and event counts stay byte-identical either way.

    def _next_frame(self) -> None:
        queue = self.queue
        on_entry = self._on_entry
        while True:
            get = queue.get()
            if not get.triggered:
                get.callbacks.append(self._on_get)
                return
            if on_entry(get._value):
                return
            # Instant drop (link flap): take the next frame now, same
            # as the generator's ``continue`` — iterative, so a deep
            # queue drained during a flap cannot blow the stack.

    def _on_get(self, event) -> None:
        if not self._on_entry(event._value):
            self._next_frame()

    def _on_entry(self, entry) -> bool:
        """Start serializing one dequeued frame.  Returns False only on
        the instant-drop path (caller pulls the next frame)."""
        _prio, _seq, frame, _enqueued_at = entry
        faults = self.faults
        if faults is not None and faults.is_down(self.sim.now):
            self.frames_dropped += 1
            faults.count_flap_drop()
            return False
        ser = frame.wire_bytes / self._eff_rate
        if self.loss_rate and self.rng is not None \
                and self.rng.random() < self.loss_rate:
            self.sim.call_at(ser, self._drop_after_busy, cancellable=False)
            return True
        if faults is not None and faults.should_drop(self.name):
            self.sim.call_at(ser, self._drop_after_busy, cancellable=False)
            return True
        if self.jitter_us and self.rng is not None:
            extra = self.rng.uniform(0.0, self.jitter_us)
        else:
            extra = 0.0
        if faults is not None:
            extra += faults.extra_delay(self.sim.now)
        if getattr(self.endpoint, "cut_through", False):
            handoff = min(ser, CUT_THROUGH_BYTES / self._eff_rate)
            self._schedule_delivery(frame, handoff + self.delay_us + extra)
            self.sim.call_at(ser, self._finish, (frame, None),
                             cancellable=False)
        else:
            self.sim.call_at(ser, self._finish, (frame, extra),
                             cancellable=False)
        return True

    def _drop_after_busy(self) -> None:
        # The wire was busy for the frame's full serialization; the
        # frame itself is lost.
        self.frames_dropped += 1
        self._next_frame()

    def _finish(self, pair) -> None:
        frame, extra = pair
        if extra is not None:
            # Store-and-forward: delivery starts after the last byte,
            # reading delay_us *now* (set_delay applies to frames whose
            # serialization ends after the change).
            self._schedule_delivery(frame, self.delay_us + extra)
        self.bytes_carried += frame.wire_bytes
        self.frames_carried += 1
        self._next_frame()

    # -- generator-mode pump (metrics / legacy dispatch) ----------------
    def _pump(self):
        queue = self.queue
        ser_wait = self._ser_wait
        while True:
            entry = yield queue.get()
            _prio, _seq, frame, enqueued_at = entry
            faults = self.faults
            if faults is not None and faults.is_down(self.sim.now):
                # Link flap, queue-drain semantics: the laser is off, so
                # the frame vanishes instantly without occupying the wire.
                self.frames_dropped += 1
                faults.count_flap_drop()
                continue
            ser = frame.wire_bytes / self._eff_rate
            if self._m_qdelay is not None:
                self._m_qdelay.observe(self.sim.now - enqueued_at)
                self._m_busy_us.inc(ser)
            if self.loss_rate and self.rng is not None \
                    and self.rng.random() < self.loss_rate:
                yield ser_wait.arm(ser)  # the wire was still busy
                self.frames_dropped += 1
                continue
            if faults is not None and faults.should_drop(self.name):
                yield ser_wait.arm(ser)  # the wire was still busy
                self.frames_dropped += 1
                continue
            if self.jitter_us and self.rng is not None:
                # dispersion jitter delays delivery, not the wire
                extra = self.rng.uniform(0.0, self.jitter_us)
            else:
                extra = 0.0
            if faults is not None:
                extra += faults.extra_delay(self.sim.now)
            if getattr(self.endpoint, "cut_through", False):
                # Hand off after one packet's worth of bytes; the wire
                # stays busy for the full serialization below.
                handoff = min(ser, CUT_THROUGH_BYTES / self._eff_rate)
                self._schedule_delivery(frame, handoff + self.delay_us
                                        + extra)
                yield ser_wait.arm(ser)
            else:
                yield ser_wait.arm(ser)
                self._schedule_delivery(frame, self.delay_us + extra)
            self.bytes_carried += frame.wire_bytes
            self.frames_carried += 1
            if self._m_bytes is not None:
                self._m_bytes.inc(frame.wire_bytes)
                self._m_frames.inc()

    def _schedule_delivery(self, frame: Frame, delay: float) -> None:
        # Jitter must never reorder frames (RC assumes FIFO wires):
        # delivery times are clamped to be non-decreasing.  Delivery is
        # a bare scheduled callback — the hottest per-frame allocation
        # the old Event + closure pair used to pay for.
        at = max(self.sim.now + delay, self._min_next_delivery)
        self._min_next_delivery = at
        self.sim.call_at(at - self.sim.now, self._deliver, frame,
                         cancellable=False)

    def _deliver(self, frame: Frame) -> None:
        frame.hops += 1
        self.endpoint.receive_frame(frame, self.parent)

    @property
    def queued_frames(self) -> int:
        return len(self.queue)


class Link:
    """Full-duplex link between endpoints ``a`` and ``b``."""

    def __init__(self, sim: Simulator, rate: float, delay_us: float = 0.0,
                 name: str = "link"):
        self.sim = sim
        self.name = name
        self.rate = rate
        self.delay_us = delay_us
        self._ab = _HalfLink(sim, rate, delay_us, f"{name}.ab")
        self._ba = _HalfLink(sim, rate, delay_us, f"{name}.ba")
        self._ab.parent = self
        self._ba.parent = self
        self.a: Optional[LinkEndpoint] = None
        self.b: Optional[LinkEndpoint] = None

    def attach(self, a: LinkEndpoint, b: LinkEndpoint) -> "Link":
        """Connect the two endpoints; must be called exactly once."""
        if self.a is not None or self.b is not None:
            raise RuntimeError(f"{self.name}: endpoints already attached")
        self.a, self.b = a, b
        self._ab.endpoint = b
        self._ba.endpoint = a
        return self

    def send(self, sender: LinkEndpoint, frame: Frame) -> None:
        """Queue ``frame`` for transmission away from ``sender``."""
        if sender is self.a:
            self._ab.put(frame)
        elif sender is self.b:
            self._ba.put(frame)
        else:
            raise ValueError(f"{sender!r} is not attached to {self.name}")

    # -- flow-reservation interface --------------------------------------
    def _half_from(self, sender: LinkEndpoint) -> _HalfLink:
        if sender is self.a:
            return self._ab
        if sender is self.b:
            return self._ba
        raise ValueError(f"{sender!r} is not attached to {self.name}")

    def reserve_flow(self, sender: LinkEndpoint, rate: float) -> None:
        """Reserve ``rate`` MB/s away from ``sender`` for flow traffic.

        Packet frames on that direction then serialize at the residual
        rate, so coexisting packet traffic sees the contention the
        collapsed flow would have caused.
        """
        if rate <= 0:
            raise ValueError("flow reservation must be positive")
        half = self._half_from(sender)
        if half.flow_reserved + rate >= half.rate:
            raise ValueError(
                f"{half.name}: reserving {rate} MB/s would exceed the "
                f"{half.rate} MB/s link rate "
                f"({half.flow_reserved} already reserved)")
        half.flow_reserved += rate
        half._eff_rate = half.rate - half.flow_reserved

    def release_flow(self, sender: LinkEndpoint, rate: float) -> None:
        """Release a reservation made with :meth:`reserve_flow`."""
        half = self._half_from(sender)
        if rate <= 0 or rate > half.flow_reserved + 1e-9:
            raise ValueError(
                f"{half.name}: releasing {rate} MB/s but only "
                f"{half.flow_reserved} reserved")
        half.flow_reserved = max(0.0, half.flow_reserved - rate)
        half._eff_rate = half.rate - half.flow_reserved

    def account_flow_bytes(self, sender: LinkEndpoint, nbytes: int,
                           frames: int = 0) -> None:
        """Account wire bytes a flow-mode collapse skipped simulating,
        so link byte-conservation invariants hold in either mode."""
        if nbytes < 0 or frames < 0:
            raise ValueError("flow accounting cannot be negative")
        half = self._half_from(sender)
        half.bytes_carried += nbytes
        half.frames_carried += frames

    def other(self, endpoint: LinkEndpoint) -> LinkEndpoint:
        if endpoint is self.a:
            return self.b
        if endpoint is self.b:
            return self.a
        raise ValueError(f"{endpoint!r} is not attached to {self.name}")

    def set_delay(self, delay_us: float) -> None:
        """Change the propagation delay (the Longbow web-UI knob).

        In-flight behaviour, pinned by
        ``tests/test_kernel_fastpath.py::test_set_delay_spares_frames_already_past_serialization``:

        * A frame whose delivery is already scheduled keeps the delay it
          was scheduled with — the change cannot recall bits on the wire.
        * Cut-through frames read ``delay_us`` when serialization
          *starts*; store-and-forward frames read it when serialization
          *ends*.  A frame mid-serialization at the time of the call
          therefore picks up the new value only in store-and-forward
          mode.
        * The wire stays FIFO regardless: each direction clamps delivery
          times to be non-decreasing, so *lowering* the delay never lets
          a later frame overtake one still in flight — it arrives
          immediately after instead.
        """
        if delay_us < 0:
            raise ValueError("propagation delay must be >= 0")
        self.delay_us = delay_us
        self._ab.delay_us = delay_us
        self._ba.delay_us = delay_us

    def inject_faults(self, rng, loss_rate: float = 0.0,
                      jitter_us: float = 0.0) -> None:
        """Enable uniform loss/jitter on both directions (legacy hook).

        ``rng`` is a ``random.Random`` (use
        :class:`repro.sim.rng.RngRegistry` for reproducibility).  For
        burst loss, flaps, delay spikes and declarative specs use
        :meth:`apply_faults` / :class:`repro.faults.FaultPlan`.
        """
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if jitter_us < 0:
            raise ValueError("jitter_us must be >= 0")
        for half in (self._ab, self._ba):
            half.rng = rng
            half.loss_rate = loss_rate
            half.jitter_us = jitter_us

    def apply_faults(self, plan, rng=None):
        """Arm a :class:`repro.faults.FaultPlan` on this link; returns
        the injector.  Equivalent to ``plan.apply(self, rng)``."""
        return plan.apply(self, rng)

    @property
    def frames_dropped(self) -> int:
        return self._ab.frames_dropped + self._ba.frames_dropped

    @property
    def bytes_carried(self) -> int:
        return self._ab.bytes_carried + self._ba.bytes_carried

    @property
    def frames_carried(self) -> int:
        return self._ab.frames_carried + self._ba.frames_carried
