"""Frame-level tracing (the port-mirror / ibdump analogue).

A :class:`FrameTracer` taps delivery at any set of devices and records
``TraceRecord`` rows — which is how the repository's own debugging was
done, and how a user can answer questions like "how many bytes actually
crossed the WAN for this collective?" without touching protocol code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from .packet import Frame

__all__ = ["TraceRecord", "FrameTracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One observed frame delivery."""

    time_us: float
    device: str
    kind: str
    src_lid: int
    dst_lid: int
    src_qpn: int
    dst_qpn: int
    size: int
    wire_bytes: int


class FrameTracer:
    """Wraps devices' ``receive_frame`` to record every delivery."""

    def __init__(self, predicate: Optional[Callable[[Frame], bool]] = None,
                 limit: int = 1_000_000):
        self.predicate = predicate
        self.limit = limit
        self.records: List[TraceRecord] = []
        self.dropped = 0
        self._taps: List = []

    def attach(self, device) -> None:
        """Start tracing deliveries at ``device`` (HCA/switch/Longbow)."""
        original = device.receive_frame
        name = getattr(device, "name", repr(device))
        sim = device.sim

        def tapped(frame: Frame, link, _orig=original, _name=name):
            if self.predicate is None or self.predicate(frame):
                if len(self.records) < self.limit:
                    self.records.append(TraceRecord(
                        time_us=sim.now, device=_name, kind=frame.kind,
                        src_lid=frame.src_lid, dst_lid=frame.dst_lid,
                        src_qpn=frame.src_qpn, dst_qpn=frame.dst_qpn,
                        size=frame.size, wire_bytes=frame.wire_bytes))
                else:
                    self.dropped += 1
            return _orig(frame, link)

        device.receive_frame = tapped
        self._taps.append((device, original))

    def detach_all(self) -> None:
        for device, _original in self._taps:
            # The tap lives as an instance attribute shadowing the class
            # method; removing it restores the untapped behaviour.
            try:
                del device.receive_frame
            except AttributeError:  # pragma: no cover - double detach
                pass
        self._taps.clear()

    # -- queries ---------------------------------------------------------
    def bytes_seen(self, kind: Optional[str] = None) -> int:
        return sum(r.size for r in self.records
                   if kind is None or r.kind == kind)

    def count(self, kind: Optional[str] = None) -> int:
        return sum(1 for r in self.records
                   if kind is None or r.kind == kind)

    def between(self, t0: float, t1: float) -> List[TraceRecord]:
        return [r for r in self.records if t0 <= r.time_us < t1]

    def __len__(self) -> int:
        return len(self.records)
