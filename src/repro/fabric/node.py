"""Compute nodes and their Host Channel Adapters."""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..calibration import HardwareProfile
from ..sim import Simulator
from .link import Link
from .packet import Frame

__all__ = ["HCA", "Node"]


class HCA:
    """Host Channel Adapter: terminates one link, dispatches to QPs.

    QPs register themselves and receive frames addressed to their QPN;
    QPN 0 is reserved (unroutable), QPN 1 receives management datagrams.
    """

    def __init__(self, sim: Simulator, profile: HardwareProfile,
                 name: str = "hca"):
        self.sim = sim
        self.profile = profile
        self.name = name
        self.lid: int = -1  # assigned by the subnet manager
        self.link: Optional[Link] = None
        self._qps: Dict[int, Any] = {}
        #: 64-bit words addressable by remote atomics (addr -> value).
        self.atomic_mem: Dict[int, int] = {}
        self._next_qpn = 2
        self.frames_sent = 0
        self.frames_received = 0

    # -- QP management ---------------------------------------------------
    def allocate_qpn(self, qp: Any) -> int:
        qpn = self._next_qpn
        self._next_qpn += 1
        self._qps[qpn] = qp
        return qpn

    def deregister_qp(self, qpn: int) -> None:
        self._qps.pop(qpn, None)

    def qp(self, qpn: int) -> Any:
        return self._qps[qpn]

    # -- fabric interface --------------------------------------------------
    def attach_link(self, link: Link) -> None:
        if self.link is not None:
            raise RuntimeError(f"{self.name}: link already attached")
        self.link = link

    def transmit(self, frame: Frame) -> None:
        if self.link is None:
            raise RuntimeError(f"{self.name}: not attached to the fabric")
        self.frames_sent += 1
        self.link.send(self, frame)

    def receive_frame(self, frame: Frame, link: Link) -> None:
        self.frames_received += 1
        qp = self._qps.get(frame.dst_qpn)
        if qp is None:
            # Real HCAs silently drop frames for dead QPs; count them so
            # tests can assert nothing unexpected was lost.
            self.frames_dropped = getattr(self, "frames_dropped", 0) + 1
            return
        qp.handle_frame(frame)


class Node:
    """A compute node: one HCA plus arbitrary attached software objects."""

    def __init__(self, sim: Simulator, profile: HardwareProfile,
                 name: str = "node"):
        self.sim = sim
        self.profile = profile
        self.name = name
        self.hca = HCA(sim, profile, name=f"{name}.hca")
        #: Free-form registry for software stacks (IPoIB netdev, NFS
        #: server, MPI process, ...) attached to this node.
        self.software: Dict[str, Any] = {}

    @property
    def lid(self) -> int:
        return self.hca.lid

    def __repr__(self) -> str:
        return f"<Node {self.name} lid={self.lid}>"
