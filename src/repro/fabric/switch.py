"""Cut-through IB switch model.

The switch forwards frames by destination LID using a forwarding table
filled in by the subnet manager.  Forwarding adds a fixed cut-through
latency; egress serialization and any head-of-line queueing are handled
by the egress :class:`~repro.fabric.link.Link`.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim import Simulator
from .link import Link
from .packet import Frame

__all__ = ["Switch"]


class Switch:
    """A LID-routed crossbar switch."""

    #: Links hand frames to switches cut-through (see repro.fabric.link).
    cut_through = True

    def __init__(self, sim: Simulator, latency_us: float, name: str = "sw"):
        self.sim = sim
        self.latency_us = latency_us
        self.name = name
        self.links: List[Link] = []
        self.forwarding: Dict[int, Link] = {}
        self.lid: int = -1  # assigned by the subnet manager
        self.frames_forwarded = 0

    def add_link(self, link: Link) -> None:
        self.links.append(link)

    def set_route(self, dst_lid: int, link: Link) -> None:
        if link not in self.links:
            raise ValueError(f"{self.name}: route via unattached link")
        self.forwarding[dst_lid] = link

    def receive_frame(self, frame: Frame, link: Link) -> None:
        try:
            egress = self.forwarding[frame.dst_lid]
        except KeyError:
            raise RuntimeError(
                f"{self.name}: no route for LID {frame.dst_lid} "
                f"(frame {frame!r})") from None
        self.frames_forwarded += 1
        self.sim.call_at(self.latency_us, self._forward, (egress, frame),
                         cancellable=False)

    def _forward(self, pair) -> None:
        egress, frame = pair
        egress.send(self, frame)
