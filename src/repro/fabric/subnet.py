"""Subnet manager: LID assignment and routing.

Mirrors OpenSM's job at the granularity this model needs: every HCA and
switch gets a LID, and each switch's forwarding table is filled with the
next-hop link on a BFS shortest path.  Two-ported pass-through devices
(the Obsidian Longbows in their "switch mode") are transparent: they are
graph vertices but need no tables.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

from .link import Link
from .node import HCA
from .switch import Switch

__all__ = ["SubnetManager"]


class SubnetManager:
    """Assigns LIDs and computes LID-routed forwarding tables."""

    def __init__(self):
        self._devices: List[object] = []
        self._links: List[Link] = []
        self._next_lid = 1
        self.lid_to_device: Dict[int, object] = {}

    # -- discovery ---------------------------------------------------------
    def add_device(self, device: object) -> None:
        if device in self._devices:
            raise ValueError(f"{device!r} already registered")
        self._devices.append(device)

    def add_link(self, link: Link) -> None:
        if link.a is None or link.b is None:
            raise ValueError(f"{link.name}: endpoints must be attached first")
        self._links.append(link)

    # -- configuration -------------------------------------------------------
    def configure(self) -> None:
        """Assign LIDs and program every switch's forwarding table."""
        for dev in self._devices:
            if getattr(dev, "lid", -1) in (-1, None):
                dev.lid = self._next_lid
                self._next_lid += 1
            self.lid_to_device[dev.lid] = dev

        adjacency: Dict[int, List[Link]] = {id(d): [] for d in self._devices}
        for link in self._links:
            if id(link.a) not in adjacency or id(link.b) not in adjacency:
                raise ValueError(
                    f"{link.name}: endpoint not registered with the SM")
            adjacency[id(link.a)].append(link)
            adjacency[id(link.b)].append(link)

        hcas = [d for d in self._devices if isinstance(d, HCA)]
        switches = [d for d in self._devices if isinstance(d, Switch)]
        for sw in switches:
            first_hop = self._bfs_first_hops(sw, adjacency)
            for hca in hcas:
                link = first_hop.get(id(hca))
                if link is not None:
                    sw.set_route(hca.lid, link)

    def _bfs_first_hops(self, source: Switch,
                        adjacency: Dict[int, List[Link]]) -> Dict[int, Link]:
        """For every reachable device, the first link out of ``source``."""
        first: Dict[int, Link] = {}
        visited = {id(source)}
        queue: deque = deque()
        for link in adjacency[id(source)]:
            nbr = link.other(source)
            if id(nbr) not in visited:
                visited.add(id(nbr))
                first[id(nbr)] = link
                queue.append(nbr)
        while queue:
            dev = queue.popleft()
            if isinstance(dev, HCA):
                continue  # HCAs do not forward
            for link in adjacency[id(dev)]:
                nbr = link.other(dev)
                if id(nbr) not in visited:
                    visited.add(id(nbr))
                    first[id(nbr)] = first[id(dev)]
                    queue.append(nbr)
        return first
