"""Topology builders for the paper's testbeds.

Three configurations appear in the paper:

* **back-to-back** — two nodes cabled directly (Fig. 3's baseline);
* **single cluster** — nodes behind one switch;
* **cluster-of-clusters** — two clusters joined by a Longbow pair over a
  WAN link with configurable delay (Fig. 2, used by every experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..calibration import DEFAULT_PROFILE, HardwareProfile
from ..sim import Simulator
from ..wan.longbow import LongbowPair
from .link import Link
from .node import Node
from .subnet import SubnetManager
from .switch import Switch

__all__ = ["Fabric", "build_back_to_back", "build_cluster",
           "build_cluster_of_clusters"]


@dataclass
class Fabric:
    """A configured, routed IB fabric ready to carry traffic."""

    sim: Simulator
    profile: HardwareProfile
    nodes: List[Node]
    switches: List[Switch] = field(default_factory=list)
    links: List[Link] = field(default_factory=list)
    wan: Optional[LongbowPair] = None
    cluster_a: List[Node] = field(default_factory=list)
    cluster_b: List[Node] = field(default_factory=list)
    sm: Optional[SubnetManager] = None

    def set_wan_delay(self, delay_us: float) -> None:
        if self.wan is None:
            raise RuntimeError("this fabric has no WAN segment")
        self.wan.set_delay(delay_us)

    def cluster_of(self, node: Node) -> str:
        """Which side of the WAN a node sits on ('A', 'B' or 'lan')."""
        if node in self.cluster_a:
            return "A"
        if node in self.cluster_b:
            return "B"
        return "lan"


def build_back_to_back(sim: Simulator,
                       profile: HardwareProfile = DEFAULT_PROFILE,
                       ) -> Fabric:
    """Two nodes joined by a single DDR cable (no switch, no Longbows)."""
    n0 = Node(sim, profile, name="n0")
    n1 = Node(sim, profile, name="n1")
    link = Link(sim, rate=profile.ddr_rate, delay_us=profile.cable_delay_us,
                name="b2b")
    link.attach(n0.hca, n1.hca)
    n0.hca.attach_link(link)
    n1.hca.attach_link(link)
    sm = SubnetManager()
    sm.add_device(n0.hca)
    sm.add_device(n1.hca)
    sm.add_link(link)
    sm.configure()
    return Fabric(sim, profile, nodes=[n0, n1], links=[link], sm=sm)


def _wire_cluster(sim: Simulator, profile: HardwareProfile, n_nodes: int,
                  name: str, sm: SubnetManager):
    """Create ``n_nodes`` nodes behind one switch; register with ``sm``."""
    switch = Switch(sim, latency_us=profile.switch_latency_us,
                    name=f"{name}.sw")
    sm.add_device(switch)
    nodes, links = [], []
    for i in range(n_nodes):
        node = Node(sim, profile, name=f"{name}{i}")
        link = Link(sim, rate=profile.ddr_rate,
                    delay_us=profile.cable_delay_us,
                    name=f"{name}{i}.cable")
        link.attach(node.hca, switch)
        node.hca.attach_link(link)
        switch.add_link(link)
        sm.add_device(node.hca)
        sm.add_link(link)
        nodes.append(node)
        links.append(link)
    return nodes, switch, links


def build_cluster(sim: Simulator, n_nodes: int,
                  profile: HardwareProfile = DEFAULT_PROFILE,
                  name: str = "n") -> Fabric:
    """A single switched cluster (intra-cluster baseline)."""
    sm = SubnetManager()
    nodes, switch, links = _wire_cluster(sim, profile, n_nodes, name, sm)
    sm.configure()
    return Fabric(sim, profile, nodes=nodes, switches=[switch], links=links,
                  sm=sm)


def build_cluster_of_clusters(sim: Simulator, nodes_a: int, nodes_b: int,
                              wan_delay_us: float = 0.0,
                              profile: HardwareProfile = DEFAULT_PROFILE,
                              ) -> Fabric:
    """The paper's Fig. 2 testbed: two clusters joined by a Longbow pair.

    Node-to-switch cables run at DDR; the switch-to-Longbow hop and the
    WAN itself run at SDR (the Longbow's IB port rate), which is what
    caps WAN traffic at ~1 GB/s in the paper.
    """
    sm = SubnetManager()
    a_nodes, a_switch, a_links = _wire_cluster(sim, profile, nodes_a, "a", sm)
    b_nodes, b_switch, b_links = _wire_cluster(sim, profile, nodes_b, "b", sm)

    wan = LongbowPair(sim, profile, delay_us=wan_delay_us)
    link_a = Link(sim, rate=profile.sdr_rate,
                  delay_us=profile.cable_delay_us, name="a.sw-lb")
    link_a.attach(a_switch, wan.a)
    a_switch.add_link(link_a)
    wan.a.attach_ib(link_a)

    link_b = Link(sim, rate=profile.sdr_rate,
                  delay_us=profile.cable_delay_us, name="b.sw-lb")
    link_b.attach(b_switch, wan.b)
    b_switch.add_link(link_b)
    wan.b.attach_ib(link_b)

    sm.add_device(wan.a)
    sm.add_device(wan.b)
    sm.add_link(link_a)
    sm.add_link(link_b)
    sm.add_link(wan.wan_link)
    sm.configure()

    return Fabric(sim, profile,
                  nodes=a_nodes + b_nodes,
                  switches=[a_switch, b_switch],
                  links=a_links + b_links + [link_a, link_b],
                  wan=wan, cluster_a=a_nodes, cluster_b=b_nodes, sm=sm)
