"""InfiniBand fabric model: frames, links, switches, nodes, routing."""

from .link import Link
from .node import HCA, Node
from .packet import Frame, wire_size
from .subnet import SubnetManager
from .switch import Switch
from .topology import (Fabric, build_back_to_back, build_cluster,
                       build_cluster_of_clusters)
from .trace import FrameTracer, TraceRecord

__all__ = ["Frame", "wire_size", "Link", "Switch", "HCA", "Node",
           "FrameTracer", "TraceRecord",
           "SubnetManager", "Fabric", "build_back_to_back", "build_cluster",
           "build_cluster_of_clusters"]
