"""Wire frames.

A :class:`Frame` is the unit the fabric forwards.  To keep event counts
tractable, one frame may carry a whole transport-level message; the
per-IB-packet header cost is still accounted exactly via
:func:`wire_size`, so link occupancy matches a per-2KB-packet simulation
while using ~1000x fewer events for large transfers (see DESIGN.md §5.1).
"""

from __future__ import annotations

import itertools
from typing import Any

__all__ = ["Frame", "wire_size"]

_frame_ids = itertools.count()


def wire_size(payload_bytes: int, mtu: int, header_bytes: int) -> int:
    """Bytes a payload occupies on the wire after MTU segmentation.

    Every started MTU-sized segment carries ``header_bytes`` of headers.
    Zero-byte payloads (pure control packets) still cost one header.
    """
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be >= 0")
    if mtu <= 0 or header_bytes < 0:
        raise ValueError("invalid mtu/header_bytes")
    segments = max(1, -(-payload_bytes // mtu))
    return payload_bytes + segments * header_bytes


class Frame:
    """One forwarded unit: addressing, wire-size accounting and payload."""

    __slots__ = ("frame_id", "src_lid", "dst_lid", "src_qpn", "dst_qpn",
                 "kind", "size", "wire_bytes", "payload", "hops", "priority")

    def __init__(self, src_lid: int, dst_lid: int, size: int,
                 wire_bytes: int, kind: str = "data",
                 src_qpn: int = 0, dst_qpn: int = 0,
                 payload: Any = None, priority: int = 1):
        if size < 0 or wire_bytes < size:
            raise ValueError(f"inconsistent frame sizes {size}/{wire_bytes}")
        self.frame_id = next(_frame_ids)
        self.src_lid = src_lid
        self.dst_lid = dst_lid
        self.src_qpn = src_qpn
        self.dst_qpn = dst_qpn
        self.kind = kind
        self.size = size
        self.wire_bytes = wire_bytes
        self.payload = payload
        #: Link arbitration class: 0 = control (ACKs etc., jump the queue,
        #: approximating packet interleaving under message-granular
        #: frames), 1 = bulk data.
        self.priority = priority
        self.hops = 0

    def __repr__(self) -> str:
        return (f"<Frame #{self.frame_id} {self.kind} "
                f"{self.src_lid}:{self.src_qpn}->{self.dst_lid}:{self.dst_qpn} "
                f"{self.size}B>")
