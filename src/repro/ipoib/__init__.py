"""IPoIB: IP over InfiniBand (UD and connected/RC modes)."""

from . import netperf
from .interface import IPoIBInterface, IPoIBNetwork

__all__ = ["IPoIBNetwork", "IPoIBInterface", "netperf"]
