"""IPoIB: IP datagrams over InfiniBand.

The Linux IPoIB driver has two data paths, both modelled here:

* **UD mode** — each IP packet rides one unreliable datagram, so the IP
  MTU is pinned to the 2 KB IB MTU (2044 B after the 4 B encapsulation
  header).  No link-level ACKs: loss/ordering is TCP's problem.
* **Connected mode (RC)** — a per-peer RC connection lets the IP MTU
  grow to 64 KB, amortizing per-packet stack costs; the price is that IP
  traffic now sits on top of the RC ACK window, which is exactly why
  NFS/IPoIB-RC tracks the verbs 64 KB curve over WAN (paper §3.3/§3.7).

Interfaces register with an :class:`IPoIBNetwork` (the neighbour-table /
ARP analogue) so peers can be resolved by LID.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..calibration import HardwareProfile
from ..fabric.node import Node
from ..fabric.topology import Fabric
from ..sim import Simulator
from ..verbs.device import VerbsContext
from ..verbs.ops import RecvWR
from ..verbs.rc import RCQueuePair, connect_rc_pair

__all__ = ["IPoIBNetwork", "IPoIBInterface"]

_RECV_RING = 256  # receive WRs kept posted per QP


class IPoIBNetwork:
    """Registry of IPoIB interfaces on one fabric (neighbour discovery)."""

    def __init__(self, fabric: Fabric, mode: str = "ud",
                 mtu: Optional[int] = None):
        if mode not in ("ud", "rc"):
            raise ValueError(f"unknown IPoIB mode {mode!r}")
        self.fabric = fabric
        self.sim = fabric.sim
        self.profile = fabric.profile
        self.mode = mode
        default = (self.profile.ipoib_ud_mtu if mode == "ud"
                   else self.profile.ipoib_rc_mtu)
        self.mtu = mtu if mtu is not None else default
        if mode == "ud" and self.mtu > self.profile.ib_mtu - self.profile.ipoib_header_bytes:
            raise ValueError(
                f"IPoIB-UD MTU {self.mtu} exceeds what a {self.profile.ib_mtu}B "
                f"IB datagram can carry")
        self.by_lid: Dict[int, "IPoIBInterface"] = {}
        self._ud_qpn_to_lid: Dict[int, int] = {}

    def add_interface(self, node: Node) -> "IPoIBInterface":
        if node.lid in self.by_lid:
            return self.by_lid[node.lid]
        iface = IPoIBInterface(self, node)
        self.by_lid[node.lid] = iface
        if iface._ud_qp is not None:
            self._ud_qpn_to_lid[iface._ud_qp.qpn] = node.lid
        node.software["ipoib"] = iface
        return iface

    def lookup(self, lid: int) -> "IPoIBInterface":
        try:
            return self.by_lid[lid]
        except KeyError:
            raise KeyError(f"no IPoIB interface at LID {lid} "
                           f"(neighbour not registered)") from None


class IPoIBInterface:
    """One node's IPoIB network device."""

    def __init__(self, network: IPoIBNetwork, node: Node):
        self.network = network
        self.node = node
        self.sim: Simulator = node.sim
        self.profile: HardwareProfile = node.profile
        self.mode = network.mode
        self.mtu = network.mtu
        #: Upper-layer input: ``receiver(src_lid, nbytes, payload)``.
        self.receiver: Optional[Callable[[int, int, Any], None]] = None
        self.ctx = VerbsContext(node)
        self._send_cq = self.ctx.create_cq("ipoib.scq")
        self._recv_cq = self.ctx.create_cq("ipoib.rcq")
        self.packets_sent = 0
        self.packets_received = 0
        if self.mode == "ud":
            self._ud_qp = self.ctx.create_ud_qp(self._send_cq, self._recv_cq)
            self._post_ring(self._ud_qp)
        else:
            self._ud_qp = None
            self._rc_qps: Dict[int, RCQueuePair] = {}
        self._qpn_to_lid: Dict[int, int] = {}
        self.sim.process(self._dispatch(), name=f"ipoib@{node.name}")

    # -- tx ------------------------------------------------------------------
    def send(self, dst_lid: int, nbytes: int, payload: Any = None) -> None:
        """Transmit one IP packet of ``nbytes`` (IP payload + IP headers).

        ``nbytes`` must fit the interface MTU; the 4-byte IPoIB
        encapsulation header is added here.
        """
        if nbytes > self.mtu:
            raise ValueError(f"IP packet of {nbytes}B exceeds MTU {self.mtu}")
        wire_payload = nbytes + self.profile.ipoib_header_bytes
        self.packets_sent += 1
        if self.mode == "ud":
            peer = self.network.lookup(dst_lid)
            self._ud_qp.send((dst_lid, peer._ud_qp.qpn), wire_payload,
                             payload=payload)
        else:
            qp = self._rc_qp_for(dst_lid)
            qp.send(wire_payload, payload=payload)

    # -- connected-mode connections ----------------------------------------
    def _rc_qp_for(self, dst_lid: int) -> RCQueuePair:
        qp = self._rc_qps.get(dst_lid)
        if qp is None:
            peer = self.network.lookup(dst_lid)
            qp = self.ctx.create_rc_qp(self._send_cq, self._recv_cq)
            peer_qp = peer.ctx.create_rc_qp(peer._send_cq, peer._recv_cq)
            connect_rc_pair(qp, peer_qp)
            self._post_ring(qp)
            peer._post_ring(peer_qp)
            self._rc_qps[dst_lid] = qp
            self._qpn_to_lid[qp.qpn] = dst_lid
            peer._rc_qps[self.node.lid] = peer_qp
            peer._qpn_to_lid[peer_qp.qpn] = self.node.lid
        return qp

    # -- rx ------------------------------------------------------------------
    def _post_ring(self, qp) -> None:
        cap = self.mtu + self.profile.ipoib_header_bytes
        for _ in range(_RECV_RING):
            qp.post_recv(RecvWR(cap))

    def _dispatch(self):
        cap = self.mtu + self.profile.ipoib_header_bytes
        while True:
            wc = yield self._recv_cq.wait()
            self.packets_received += 1
            # Replenish the ring on the QP the packet arrived on.
            qp = self.node.hca.qp(wc.qp_num)
            qp.post_recv(RecvWR(cap))
            if self.receiver is not None:
                nbytes = wc.byte_len - self.profile.ipoib_header_bytes
                self.receiver(wc.src_lid, nbytes, wc.payload)
