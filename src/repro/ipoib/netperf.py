"""IPoIB throughput benchmarks (the netperf/iperf analogue).

These drive the paper's §3.3 experiments: single-stream bandwidth with a
given TCP window and IP MTU, and parallel-stream aggregate bandwidth.
Messages of ``msg_bytes`` (2 MB in the paper) are sent back to back and
throughput is measured at the receiver over the whole transfer.
"""

from __future__ import annotations

from typing import List, Optional

from ..fabric.node import Node
from ..fabric.topology import Fabric
from ..sim import Simulator
from ..tcp.socket import TcpStack
from .interface import IPoIBNetwork

__all__ = ["run_stream_bw", "run_parallel_stream_bw", "make_stacks"]


def make_stacks(fabric: Fabric, node_a: Node, node_b: Node, mode: str = "ud",
                mtu: Optional[int] = None):
    """Create an IPoIB network + TCP stack on two nodes."""
    net = IPoIBNetwork(fabric, mode=mode, mtu=mtu)
    stack_a = TcpStack(net.add_interface(node_a))
    stack_b = TcpStack(net.add_interface(node_b))
    return stack_a, stack_b


def run_stream_bw(sim: Simulator, fabric: Fabric, node_a: Node, node_b: Node,
                  total_bytes: int, mode: str = "ud",
                  mtu: Optional[int] = None,
                  window: Optional[int] = None,
                  msg_bytes: int = 2 * 1024 * 1024,
                  warm_start: bool = True) -> float:
    """Single TCP stream A->B; returns receiver-observed MB/s.

    ``warm_start=True`` (default) opens the congestion window to the
    advertised receive window up front, measuring the steady state a
    long-running transfer converges to (the paper's iperf-style runs);
    set it False to include the slow-start ramp.
    """
    stack_a, stack_b = make_stacks(fabric, node_a, node_b, mode, mtu)
    return _run(sim, stack_a, stack_b, [total_bytes], window, msg_bytes,
                warm_start)


def run_parallel_stream_bw(sim: Simulator, fabric: Fabric, node_a: Node,
                           node_b: Node, total_bytes: int, streams: int,
                           mode: str = "ud", mtu: Optional[int] = None,
                           window: Optional[int] = None,
                           msg_bytes: int = 2 * 1024 * 1024,
                           warm_start: bool = True) -> float:
    """``streams`` concurrent sockets A->B; aggregate MB/s."""
    if streams < 1:
        raise ValueError("streams must be >= 1")
    stack_a, stack_b = make_stacks(fabric, node_a, node_b, mode, mtu)
    per_stream = total_bytes // streams
    return _run(sim, stack_a, stack_b, [per_stream] * streams, window,
                msg_bytes, warm_start)


def _run(sim: Simulator, stack_a: TcpStack, stack_b: TcpStack,
         stream_bytes: List[int], window: Optional[int],
         msg_bytes: int, warm_start: bool = True) -> float:
    port = 5001
    listener = stack_b.listen(port, window=window)
    t_done = {}
    # Flow-mode hook: when engaged, a controller watches every stream
    # from outside and may collapse the proved steady-state tail into
    # one analytic completion per stream (see repro.flow.tcp).  The
    # measurement below is identical either way.
    from ..flow.dispatch import engaged
    if engaged(sim, getattr(stack_a.iface.network, "fabric", None)):
        from ..flow.tcp import flow_stream_controller
        flow = flow_stream_controller(sim, stack_a, stack_b,
                                      len(stream_bytes))
    else:
        flow = None

    def server(n_streams: int):
        waiters = []
        for _ in range(n_streams):
            sock = yield listener.accept()
            if flow is not None:
                flow.watch_server(sock)
            waiters.append(sim.process(_drain(sock)))
        yield sim.all_of(waiters)
        t_done["t1"] = sim.now

    def _drain(sock):
        total = stream_bytes[0]  # all streams equal by construction
        yield sock.recv_bytes(total)

    def client(nbytes: int):
        sock = yield stack_a.connect(stack_b.lid, port, window=window)
        if warm_start:
            sock.cc.cwnd = float(sock.peer_rwnd)
        remaining = nbytes
        while remaining > 0:
            chunk = min(msg_bytes, remaining)
            sock.send(chunk)
            remaining -= chunk
        if flow is not None:
            # Registered only after the whole stream is queued, so the
            # controller sees the final snd_total when anchoring its
            # sampling thresholds.
            flow.watch_client(sock)
        return sock

    t0 = sim.now
    done = sim.process(server(len(stream_bytes)), name="netperf.server")
    for nbytes in stream_bytes:
        sim.process(client(nbytes), name="netperf.client")
    sim.run(until=done)
    total = sum(stream_bytes)
    return total / (t_done["t1"] - t0)
