"""Structured exporters for a :class:`~repro.obs.metrics.MetricsRegistry`.

Three renderings of the same canonical snapshot
(:meth:`MetricsRegistry.to_dict`):

* :func:`to_json` — one sorted-key JSON document (what the golden-trace
  tests pin byte-for-byte);
* :func:`to_json_lines` — one JSON object per metric per line, for
  streaming consumers;
* :func:`format_summary` — the human table the CLI ``--metrics`` flag
  prints.

All three are deterministic: keys are sorted, floats use Python's
round-trippable ``repr`` via :mod:`json`, and nothing depends on wall
time or iteration order.
"""

from __future__ import annotations

import json
from typing import List

from .metrics import MetricsRegistry, key_str

__all__ = ["to_json", "to_json_lines", "format_summary"]


def to_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """The canonical snapshot as a single sorted-key JSON document."""
    return json.dumps(registry.to_dict(), indent=indent, sort_keys=True)


def to_json_lines(registry: MetricsRegistry) -> str:
    """The snapshot as JSON-lines: one compact object per metric."""
    return "\n".join(
        json.dumps(entry, sort_keys=True, separators=(",", ":"))
        for entry in registry.to_dict()["metrics"])


def _value_cell(metric) -> str:
    if metric.kind == "counter":
        return f"{metric.value:g}"
    if metric.kind == "gauge":
        return (f"last={metric.value:g} min={metric.min:g} "
                f"max={metric.max:g}" if metric.samples
                else "no samples")
    # histogram
    if not metric.n:
        return "no samples"
    return (f"n={metric.n} mean={metric.mean:g} "
            f"min={metric.min:g} max={metric.max:g}")


def format_summary(registry: MetricsRegistry) -> str:
    """A fixed-width summary table of every metric in the registry."""
    if not len(registry):
        return "metrics: none recorded"
    rows: List[tuple] = [(key_str(m.key), m.kind, _value_cell(m))
                         for m in registry]
    name_w = max(len("metric"), max(len(r[0]) for r in rows))
    kind_w = max(len("type"), max(len(r[1]) for r in rows))
    lines = [f"{'metric':<{name_w}}  {'type':<{kind_w}}  value",
             f"{'-' * name_w}  {'-' * kind_w}  {'-' * 5}"]
    lines += [f"{name:<{name_w}}  {kind:<{kind_w}}  {cell}"
              for name, kind, cell in rows]
    return "\n".join(lines)
