"""Metrics primitives and the registry that holds them.

Zero-dependency counterparts of the usual telemetry trio:

* :class:`Counter`   — a monotonically non-decreasing total;
* :class:`Gauge`     — a last-value sample with min/max watermarks;
* :class:`Histogram` — fixed log2 buckets (bucket ``k`` holds values
  ``v`` with ``int(v)`` in ``[2**(k-1), 2**k - 1]``; bucket 0 holds
  ``v < 1``), so the bucket layout never depends on the data.

Metrics live in a :class:`MetricsRegistry`, keyed by
``(component, name, labels)``; asking twice for the same key returns the
same object, which is how independently-constructed components (every
RC QP, say) aggregate into one series.

Everything here is deterministic: values derive purely from simulation
events, buckets are fixed, and serialization (see
:mod:`repro.obs.export`) sorts every key — so a registry snapshot of a
deterministic run is itself byte-for-byte reproducible, and the
test-suite pins snapshots as golden files.

Attachment contract (the no-op-when-detached rule)
--------------------------------------------------
The instrumented components never require a registry.  Each one reads
``sim.metrics`` **once, at construction**, and caches either real metric
handles or ``None``; hot paths guard on ``if handle is not None``, so a
detached run costs one attribute test per event and allocates nothing.
Attach a registry either explicitly (``Simulator(metrics=reg)`` /
``sim.attach_metrics(reg)``) or process-wide with
:func:`use_registry` / :func:`set_default_registry` **before** building
the fabric and protocol objects whose activity you want to observe.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricKey",
    "get_default_registry",
    "set_default_registry",
    "use_registry",
]

#: ``(component, name, ((label, value), ...))`` — labels sorted by key.
MetricKey = Tuple[str, str, Tuple[Tuple[str, str], ...]]


def _make_key(component: str, name: str, labels: Dict[str, Any]) -> MetricKey:
    return (component, name,
            tuple(sorted((k, str(v)) for k, v in labels.items())))


def key_str(key: MetricKey) -> str:
    """Human-readable ``component.name{k=v,...}`` form of a metric key."""
    component, name, labels = key
    if not labels:
        return f"{component}.{name}"
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{component}.{name}{{{inner}}}"


class Counter:
    """A total that only ever grows (float increments allowed)."""

    kind = "counter"
    __slots__ = ("key", "value")

    def __init__(self, key: MetricKey):
        self.key = key
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {key_str(self.key)}: "
                             f"negative increment {amount}")
        self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """A sampled instantaneous value with min/max watermarks."""

    kind = "gauge"
    __slots__ = ("key", "value", "min", "max", "samples")

    def __init__(self, key: MetricKey):
        self.key = key
        self.value: float = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples = 0

    def set(self, value: float) -> None:
        self.value = value
        self.samples += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def inc(self, amount: float = 1) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1) -> None:
        self.set(self.value - amount)

    def to_dict(self) -> Dict[str, Any]:
        return {"value": self.value, "min": self.min, "max": self.max,
                "samples": self.samples}


class Histogram:
    """Fixed log2-bucket histogram of non-negative values."""

    kind = "histogram"
    __slots__ = ("key", "counts", "n", "sum", "min", "max")

    def __init__(self, key: MetricKey):
        self.key = key
        #: bucket index -> count; index ``int(v).bit_length()``.
        self.counts: Dict[int, int] = {}
        self.n = 0
        self.sum: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    @staticmethod
    def bucket_index(value: float) -> int:
        return int(value).bit_length()

    @staticmethod
    def bucket_upper_bound(index: int) -> float:
        """Exclusive upper bound of bucket ``index`` (``2**index``)."""
        return float(2 ** index)

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram {key_str(self.key)}: "
                             f"negative observation {value}")
        idx = int(value).bit_length()
        self.counts[idx] = self.counts.get(idx, 0) + 1
        self.n += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.n if self.n else 0.0

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` rows, bound-ascending."""
        total = 0
        rows = []
        for idx in sorted(self.counts):
            total += self.counts[idx]
            rows.append((self.bucket_upper_bound(idx), total))
        return rows

    def to_dict(self) -> Dict[str, Any]:
        return {"n": self.n, "sum": self.sum, "min": self.min,
                "max": self.max,
                "buckets": {str(i): self.counts[i]
                            for i in sorted(self.counts)}}


class MetricsRegistry:
    """All metrics of one observed run, keyed by (component, name, labels).

    The factory methods (:meth:`counter`, :meth:`gauge`,
    :meth:`histogram`) create on first use and return the existing
    object afterwards; requesting an existing key as a different metric
    type is an error.
    """

    def __init__(self):
        self._metrics: Dict[MetricKey, Any] = {}

    def _get(self, cls, component: str, name: str,
             labels: Dict[str, Any]):
        key = _make_key(component, name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(key)
            self._metrics[key] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"{key_str(key)} is a {metric.kind}, not a {cls.kind}")
        return metric

    def counter(self, component: str, name: str, **labels) -> Counter:
        return self._get(Counter, component, name, labels)

    def gauge(self, component: str, name: str, **labels) -> Gauge:
        return self._get(Gauge, component, name, labels)

    def histogram(self, component: str, name: str, **labels) -> Histogram:
        return self._get(Histogram, component, name, labels)

    # -- queries --------------------------------------------------------
    def get(self, component: str, name: str, **labels):
        """The metric at a key, or ``None`` if nothing recorded there."""
        return self._metrics.get(_make_key(component, name, labels))

    def find(self, component: Optional[str] = None,
             name: Optional[str] = None) -> List[Any]:
        """All metrics matching ``component`` and/or ``name``, key-sorted."""
        return [m for k, m in sorted(self._metrics.items())
                if (component is None or k[0] == component)
                and (name is None or k[1] == name)]

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Any]:
        for _key, metric in sorted(self._metrics.items()):
            yield metric

    def to_dict(self) -> Dict[str, Any]:
        """Canonical snapshot: a key-sorted list of metric entries."""
        entries = []
        for (component, name, labels), metric in sorted(
                self._metrics.items()):
            entry = {"component": component, "name": name,
                     "labels": dict(labels), "type": metric.kind}
            entry.update(metric.to_dict())
            entries.append(entry)
        return {"metrics": entries}

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`to_dict` snapshot into this registry.

        This is how the parallel experiment engine keeps ``--metrics``
        working under ``--jobs > 1``: each worker process observes its
        task in a private registry and ships the snapshot back, and the
        parent merges them — in deterministic (request) order, so the
        merged summary matches what one shared registry would hold.

        Counters add; histograms add bucket counts and fold ``n``,
        ``sum`` and the min/max watermarks; gauges fold sample counts
        and watermarks and take the merged snapshot's last value.
        """
        for entry in snapshot.get("metrics", []):
            component, name = entry["component"], entry["name"]
            labels = entry.get("labels", {})
            kind = entry["type"]
            if kind == "counter":
                self.counter(component, name, **labels).inc(entry["value"])
            elif kind == "gauge":
                gauge = self.gauge(component, name, **labels)
                if entry["samples"]:
                    gauge.value = entry["value"]
                    gauge.samples += entry["samples"]
                    gauge.min = (entry["min"] if gauge.min is None
                                 else min(gauge.min, entry["min"]))
                    gauge.max = (entry["max"] if gauge.max is None
                                 else max(gauge.max, entry["max"]))
            elif kind == "histogram":
                hist = self.histogram(component, name, **labels)
                for bucket, count in entry["buckets"].items():
                    idx = int(bucket)
                    hist.counts[idx] = hist.counts.get(idx, 0) + count
                hist.n += entry["n"]
                hist.sum += entry["sum"]
                if entry["n"]:
                    hist.min = (entry["min"] if hist.min is None
                                else min(hist.min, entry["min"]))
                    hist.max = (entry["max"] if hist.max is None
                                else max(hist.max, entry["max"]))
            else:
                raise ValueError(f"unknown metric type {kind!r} in "
                                 f"snapshot entry {component}.{name}")


# ---------------------------------------------------------------------------
# process-wide default registry (what `--metrics` and tests use)
# ---------------------------------------------------------------------------

_default_registry: Optional[MetricsRegistry] = None


def get_default_registry() -> Optional[MetricsRegistry]:
    """The registry new :class:`~repro.sim.Simulator` objects adopt."""
    return _default_registry


def set_default_registry(
        registry: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    """Install ``registry`` as the process default; returns the previous."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry):
    """Scope ``registry`` as the default: every Simulator built inside
    the ``with`` block is observed; the previous default is restored on
    exit."""
    previous = set_default_registry(registry)
    try:
        yield registry
    finally:
        set_default_registry(previous)


# The simulation kernel stays import-free: it exposes a provider slot
# that we fill when (and only when) the obs layer is imported.
from ..sim import core as _sim_core  # noqa: E402  (deliberate late import)

_sim_core.default_metrics_provider = get_default_registry
