"""repro.obs — simulation-wide metrics and tracing.

A zero-dependency observability substrate: counters, gauges and
deterministic log2-bucket histograms collected into a
:class:`MetricsRegistry`, with instrumentation hooks threaded through
the event kernel, links, the RC/UD verbs transports, TCP, MPI and NFS.

The layer is off by default and free when detached — components cache
metric handles (or ``None``) at construction and hot paths guard on a
single ``is not None`` test.  Attach a registry before building the
objects you want observed::

    from repro.obs import MetricsRegistry, use_registry, format_summary
    reg = MetricsRegistry()
    with use_registry(reg):
        scenario = wan_pair(1000.0)          # Simulator adopts `reg`
        perftest.run_send_bw(scenario.sim, scenario.a, scenario.b, 65536)
    print(format_summary(reg))

Snapshots (:func:`to_json`) of a deterministic run are byte-for-byte
reproducible; the golden-trace test-suite pins them.
"""

from .export import format_summary, to_json, to_json_lines
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      get_default_registry, set_default_registry,
                      use_registry)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "get_default_registry", "set_default_registry", "use_registry",
    "to_json", "to_json_lines", "format_summary",
]
