"""Flow twins of the :mod:`repro.verbs.perftest` bandwidth runners.

Same measurement conventions as the packet twin (t0 at the first
receiver completion, bandwidth over ``iters - 1`` inter-completion
gaps, receiver-observed), same QP machinery underneath — the only
change is *when* sends are posted and how the tail completes:

* the sender is paced by receiver completions with a lookahead of one
  send window plus slack, so its backlog never runs dry while the
  window is open (post timing therefore cannot change frame timing)
  and a collapse can stop posting the tail;
* every receiver completion feeds a
  :class:`~repro.flow.crossover.PeriodDetector`; once the completion
  pattern is *proved* periodic and enough messages remain beyond the
  in-flight set, posting halts, the skipped messages' wire bytes are
  accounted on the WAN link, and the missing completions are delivered
  in one analytic event at the predicted time of the last completion.

UD never collapses here: its pump drains the backlog continuously, so
by the time the detector could confirm, everything is already posted —
the run degenerates to the packet trajectory (which is exactly what
the equivalence wall wants from a transport with nothing to skip).
"""

from __future__ import annotations

from typing import Optional

from ..fabric.node import Node
from ..sim import Simulator
from ..verbs.ops import Opcode, WCStatus, WorkCompletion
from ..verbs.perftest import _make_pair, _post_recvs, _send
from ..verbs.qp import QPState
from . import models
from .crossover import PeriodDetector

__all__ = ["flow_send_bw", "flow_bidir_bw", "PACKET_TWIN"]

#: The packet-mode module this one must stay in lockstep with (PAR304).
PACKET_TWIN = "repro.verbs.perftest"

#: Sends kept posted beyond received completions (one window + slack):
#: backlog depth at the sender is provably >= the slack whenever the
#: send window is open, so paced posting is timing-identical to the
#: packet twin's post-everything-upfront.
_LOOKAHEAD_SLACK = 4

#: Minimum quanta between the in-flight set and the final completion
#: before a collapse is allowed — the natural drain of everything
#: already posted must finish strictly before the analytic completion.
_DRAIN_SLACK = 4


class _Direction:
    """One data direction: paced sender, detector, collapse bookkeeping."""

    def __init__(self, sim: Simulator, qp_tx, qp_rx, size: int, iters: int,
                 transport: str, fabric, a_to_b: bool):
        self.sim = sim
        self.qp_tx = qp_tx
        self.qp_rx = qp_rx
        self.size = size
        self.iters = iters
        self.transport = transport
        self.fabric = fabric
        self.a_to_b = a_to_b
        window = getattr(qp_tx, "send_window", 1)
        self.window = window
        self.detector = PeriodDetector(
            window_quanta=window if transport == "rc" else 1)
        self.posted = 0
        self.got = 0
        self.halted = False

    def prime(self) -> None:
        _post_recvs(self.qp_rx, self.size, self.iters)
        if self.transport == "rc":
            initial = min(self.iters, self.window + _LOOKAHEAD_SLACK)
        else:
            # UD has no ACK clock to pace against; post everything, as
            # the packet twin does.
            initial = self.iters
        for _ in range(initial):
            self._post_one()

    def _post_one(self) -> None:
        _send(self.qp_tx, self.qp_rx, self.size)
        self.posted += 1

    def _fingerprint(self) -> tuple:
        fp = [getattr(self.qp_tx, "retransmissions", 0),
              self.qp_tx.state is QPState.RTS,
              self.qp_rx.state is QPState.RTS,
              getattr(self.qp_rx, "recv_dropped", 0)]
        wan = getattr(self.fabric, "wan", None)
        if wan is not None:
            # Quantized to buffer *pressure* (below 1/8th of the pool):
            # raw counters fluctuate with every in-flight frame and
            # would never repeat, while credit starvation — the real
            # crossover — still breaks the fingerprint.
            for unit in (wan.a, wan.b):
                fp.append(unit.credits * 8
                          < unit.profile.longbow_buffer_bytes)
        return tuple(fp)

    def on_completion(self) -> None:
        """One receiver completion consumed at ``sim.now``."""
        self.got += 1
        if self.halted:
            return
        if self.posted < self.iters:
            self._post_one()
        if not self.detector.gave_up:
            self.detector.add(self.sim.now, self._fingerprint())

    @property
    def remaining(self) -> int:
        return self.iters - self.got

    def eligible(self) -> bool:
        if self.halted or not self.detector.stable:
            return False
        if self.posted >= self.iters:
            return False  # nothing left to skip; let the tail drain
        if self.remaining < (self.posted - self.got) + _DRAIN_SLACK:
            return False
        profile = self.qp_tx.profile
        window_wire = self.window * models.verbs_data_wire_bytes(
            profile, self.size, self.transport)
        return models.longbow_headroom_ok(profile, window_wire)

    def collapse(self) -> None:
        """Halt posting; deliver the tail analytically."""
        self.halted = True
        t_last = self.detector.predict(self.remaining)
        self._account(self.iters - self.posted)
        self.sim.schedule_flow_completion(max(0.0, t_last - self.sim.now),
                                          self._force)

    def _account(self, messages: int) -> None:
        wan = getattr(self.fabric, "wan", None)
        if wan is None or messages <= 0:
            return
        profile = self.qp_tx.profile
        link = wan.wan_link
        fwd, rev = ((link.a, link.b) if self.a_to_b else (link.b, link.a))
        link.account_flow_bytes(
            fwd, messages * models.verbs_data_wire_bytes(
                profile, self.size, self.transport), frames=messages)
        ack = models.verbs_ack_wire_bytes(profile, self.transport)
        if ack:
            link.account_flow_bytes(rev, messages * ack, frames=messages)

    def _force(self) -> None:
        delivered = self.got + len(self.qp_rx.recv_cq)
        for _ in range(self.iters - delivered):
            self.qp_rx.recv_cq.push(WorkCompletion(
                0, Opcode.RECV, WCStatus.SUCCESS, self.size,
                self.qp_rx.qpn, self.sim.now))


class _CollapseGroup:
    """All directions of a run collapse atomically or not at all —
    halting one direction changes link contention for the others."""

    def __init__(self, directions):
        self.directions = directions
        self.done = False

    def maybe_collapse(self) -> None:
        if self.done:
            return
        if all(d.eligible() for d in self.directions):
            self.done = True
            for d in self.directions:
                d.collapse()


def flow_send_bw(sim: Simulator, node_a: Node, node_b: Node, size: int,
                 iters: int = 64, transport: str = "rc",
                 window: Optional[int] = None, fabric=None) -> float:
    """Flow-accelerated unidirectional send bandwidth in MB/s."""
    if iters < 2:
        raise ValueError("need at least 2 iterations")
    qp_a, qp_b = _make_pair(node_a, node_b, transport, window)
    direction = _Direction(sim, qp_a, qp_b, size, iters, transport,
                           fabric, a_to_b=True)
    group = _CollapseGroup([direction])
    result = {}

    def receiver():
        direction.prime()
        yield qp_b.recv_cq.wait()
        t0 = sim.now
        direction.on_completion()
        group.maybe_collapse()
        for _ in range(iters - 1):
            yield qp_b.recv_cq.wait()
            direction.on_completion()
            group.maybe_collapse()
        result["mbps"] = size * (iters - 1) / (sim.now - t0)

    done = sim.process(receiver(), name="flow.bw.receiver")
    sim.run(until=done)
    return result["mbps"]


def flow_bidir_bw(sim: Simulator, node_a: Node, node_b: Node, size: int,
                  iters: int = 64, transport: str = "rc",
                  window: Optional[int] = None, fabric=None) -> float:
    """Flow-accelerated bidirectional send bandwidth in MB/s (sum)."""
    if iters < 2:
        raise ValueError("need at least 2 iterations")
    qp_a, qp_b = _make_pair(node_a, node_b, transport, window)
    dir_ab = _Direction(sim, qp_a, qp_b, size, iters, transport,
                        fabric, a_to_b=True)
    dir_ba = _Direction(sim, qp_b, qp_a, size, iters, transport,
                        fabric, a_to_b=False)
    group = _CollapseGroup([dir_ab, dir_ba])
    result = {}

    def receiver(direction, key):
        direction.prime()
        yield direction.qp_rx.recv_cq.wait()
        t0 = sim.now
        direction.on_completion()
        group.maybe_collapse()
        for _ in range(iters - 1):
            yield direction.qp_rx.recv_cq.wait()
            direction.on_completion()
            group.maybe_collapse()
        result[key] = size * (iters - 1) / (sim.now - t0)

    done_a = sim.process(receiver(dir_ab, "ab"), name="flow.bibw.recv.b")
    done_b = sim.process(receiver(dir_ba, "ba"), name="flow.bibw.recv.a")
    sim.run(until=sim.all_of([done_a, done_b]))
    return result["ab"] + result["ba"]
