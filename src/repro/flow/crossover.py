"""Steady-state proof: the crossover detector.

Flow mode never *assumes* a transfer has reached steady state — it
proves it from the completion series itself.  :class:`PeriodDetector`
is fed one ``(time, fingerprint)`` sample per completion quantum and
confirms a period ``p`` only when the last ``K`` gaps taken ``p``
samples apart are mutually equal within a period-scaled jitter
tolerance *and* the protocol fingerprints repeat exactly at the same
separation.  The fingerprint carries every piece of state whose change
must force a crossover back to packet mode — send window, cwnd
generation, retransmission counters, Longbow credits — so a confirmed
period is simultaneously a proof that none of those transitions
happened inside the window the extrapolation is built from.

The ``K`` compared gaps start at ``K`` consecutive phases, so together
they cover every phase of the period from samples spanning more than
one full cycle — a burst pattern (equal cycle time, unequal intra-burst
spacing) passes, while any drift or embedded stall larger than the
tolerance breaks every gap that straddles it.  The tolerance itself is
the caller's model of benign jitter: sampling thresholds that are not
segment-aligned slide across segment boundaries (a Sturmian rotation),
making consecutive gaps differ by up to one segment service time
without the underlying rate changing.  ``jitter_unit_us`` scales with
the period (nearby phases share almost the same rotation) and
``jitter_cap_us`` bounds it (the rotation never exceeds one segment).

Confirmation is re-verified on every subsequent sample and withdrawn
the moment it breaks, so a detector that confirmed during a transient
coincidence un-confirms before anyone extrapolates from it.
Mis-detection therefore costs speed (the run stays packet-level), never
accuracy.
"""

from __future__ import annotations

from typing import Any, List, Optional

__all__ = ["PeriodDetector"]


class PeriodDetector:
    """Detects a periodic completion pattern and extrapolates it.

    ``window_quanta`` is the protocol's natural burst length measured in
    sampling quanta (the RC send window for per-message sampling; the
    TCP send window for threshold sampling).  Candidate periods are the
    powers of two up to ``2 * window_quanta`` plus ``window_quanta`` and
    ``2 * window_quanta`` themselves — every pattern the modelled
    protocols can produce divides one of these.
    """

    def __init__(self, window_quanta: int = 1, atol_us: float = 1e-3,
                 rtol: float = 1e-9, max_samples: Optional[int] = None,
                 extra_periods: Optional[List[int]] = None,
                 confirm_streak: int = 2, jitter_unit_us: float = 0.0,
                 jitter_cap_us: float = 0.0, min_samples: int = 0):
        wq = max(1, int(window_quanta))
        hyps = {wq, 2 * wq}
        p = 1
        while p <= 2 * wq:
            hyps.add(p)
            p *= 2
        for p in (extra_periods or ()):
            if p >= 1:
                hyps.add(int(p))
        self.window_quanta = wq
        self.hypotheses: List[int] = sorted(hyps)
        self.atol_us = atol_us
        self.rtol = rtol
        self.jitter_unit_us = max(0.0, float(jitter_unit_us))
        self.jitter_cap_us = max(0.0, float(jitter_cap_us))
        self.max_samples = max_samples or 4 * self.hypotheses[-1] + 32
        #: Consecutive confirmations (at an unchanged period) required
        #: before :attr:`stable` — a confirmation must survive fresh
        #: samples before anyone extrapolates from it.
        self.confirm_streak = max(1, int(confirm_streak))
        #: Absolute sample floor for :attr:`stable` — short series give
        #: the gap mean too little averaging depth to extrapolate far.
        self.min_samples = max(0, int(min_samples))
        self.streak = 0
        self.times: List[float] = []
        self.prints: List[Any] = []
        self.period: Optional[int] = None
        self.gap: Optional[float] = None
        self.confirmed = False
        #: Samples validated by the current confirmation run (grows by
        #: one per consecutive re-confirmation) — the averaging window
        #: for :meth:`predict`, guaranteed free of breaking events.
        self.valid_n = 0
        self._ever_confirmed = False
        #: Set when ``max_samples`` arrived without a single
        #: confirmation — the pattern is not periodic at any candidate;
        #: stop sampling.  A pattern that *has* confirmed keeps being
        #: tracked through later breaks (e.g. periodic stalls).
        self.gave_up = False

    @property
    def stable(self) -> bool:
        """Confirmed, survived a streak of further samples at the same
        period, and enough samples for the gap mean to be trusted."""
        return (self.confirmed and self.streak >= self.confirm_streak
                and len(self.times) >= self.min_samples)

    def tolerance(self, period: int) -> float:
        """Gap-equality tolerance for a candidate ``period``."""
        t = self.times[-1] if self.times else 0.0
        return (self.atol_us + self.rtol * abs(t)
                + min(self.jitter_cap_us, period * self.jitter_unit_us))

    def _required(self, period: int) -> int:
        # Sub-window periods must be verified across more than a full
        # burst, or the even spacing *inside* one window burst would
        # alias as period 1 during pipe fill.
        if period >= self.window_quanta:
            return 4
        return max(4, self.window_quanta + 2)

    def add(self, t: float, fingerprint: Any) -> bool:
        """Feed one sample; returns the (re)computed ``confirmed``."""
        if self.gave_up:
            return False
        times = self.times
        prints = self.prints
        times.append(float(t))
        prints.append(fingerprint)
        # Re-verify from scratch every sample: confirmation is a claim
        # about the *latest* window, never a sticky flag.
        previous_period = self.period if self.confirmed else None
        self.confirmed = False
        self.period = None
        self.gap = None
        n = len(times)
        last = n - 1
        for p in self.hypotheses:
            k = self._required(p)
            if n < p + k:
                continue
            if any(prints[last - i] != prints[last - i - p]
                   for i in range(k)):
                continue
            # Cross-phase confirmation: the k gaps start at k distinct
            # consecutive phases and each spans one full cycle, so
            # mutual equality proves the cycle time is phase-independent
            # over the whole window — and any stall, reshuffle or drift
            # inside it larger than the jitter tolerance breaks at
            # least one of them.
            gaps = [times[last - i] - times[last - i - p]
                    for i in range(k)]
            if min(gaps) <= 0.0:
                continue
            if max(gaps) - min(gaps) > self.tolerance(p):
                continue
            self.period = p
            self.confirmed = True
            self._ever_confirmed = True
            if p == previous_period:
                self.streak += 1
                self.valid_n = min(n, self.valid_n + 1)
            else:
                self.streak = 1
                self.valid_n = p + k
            # Mean cycle time over the validated window: averaging over
            # c full cycles shrinks the Sturmian sampling jitter of a
            # single gap by 1/c in the extrapolation.
            c = max(1, (self.valid_n - 1) // p)
            self.gap = (times[last] - times[last - c * p]) / c
            return True
        self.streak = 0
        self.valid_n = 0
        if n >= self.max_samples and not self._ever_confirmed:
            self.gave_up = True
        return False

    def predict(self, m: int) -> float:
        """Predicted time of the sample ``m`` quanta after the last one.

        Phase-anchored: ``m`` is decomposed as ``q * p + r`` and the
        prediction extrapolates from the observed sample congruent to
        the target modulo ``p``, so burst-internal spacing (RC sends a
        window burst then waits an RTT) is preserved — but the advance
        per cycle is the *mean* validated gap, whose sampling jitter is
        averaged down rather than multiplied out.
        """
        if not self.confirmed:
            raise RuntimeError("predict() before confirmation")
        if m < 0:
            raise ValueError("m must be >= 0")
        p = self.period
        n = len(self.times)
        q, r = divmod(m, p)
        anchor = n - 1 if r == 0 else n - 1 - (p - r)
        steps = q if r == 0 else q + 1
        return self.times[anchor] + steps * self.gap
