"""The hybrid-dispatch gate: should this run use flow acceleration?

One predicate, consulted by the runner twins before they arm any flow
machinery.  Flow mode is *never* engaged when:

* the mode is unset or ``"off"`` (packet fidelity is the default);
* a metrics registry is attached to the simulator — per-event series
  (queue depths, stall histograms) only exist in packet mode;
* a process-wide fault spec is active, or the fabric has an armed
  fault plan — loss/flap trajectories are packet-level by nature, and
  the equivalence argument only covers clean steady states.

``"on"`` and ``"auto"`` are identical at this gate; they differ only in
intent (``on`` is for tests that want the flow path exercised even on
tiny transfers where ``auto`` would never finish confirming).
"""

from __future__ import annotations

from ..faults import context as _faults_context
from . import context as _flow_context

__all__ = ["engaged"]


def engaged(sim, fabric=None) -> bool:
    """True when flow acceleration may arm for a run on ``sim``."""
    mode = _flow_context.get_flow_mode()
    if mode not in ("auto", "on"):
        return False
    if getattr(sim, "metrics", None) is not None:
        return False
    if _faults_context.get_active_spec() is not None:
        return False
    if fabric is not None and getattr(fabric, "faults_active", False):
        return False
    return True
