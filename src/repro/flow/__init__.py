"""Flow-level hybrid acceleration.

Packet-mode simulation pays one event per frame; the paper's bulk
transfers (Figs. 5-7) spend almost all of those events in analytically
known steady states — RC window pipelining, UD streaming, TCP
cwnd-capped ACK clocking.  This package collapses the *tail* of such a
transfer into one analytically computed completion event once a
:class:`~repro.flow.crossover.PeriodDetector` has *proved* the steady
state from observed completions, and falls back to packet mode the
moment anything (window change, cwnd transition, retransmission,
fault-plan arm, Longbow buffer crossover) breaks the proof.

Entry points:

* :mod:`repro.flow.context` — process-wide ``--flow auto|on|off`` mode;
* :mod:`repro.flow.dispatch` — the engagement gate (off under metrics
  or faults, always);
* :mod:`repro.flow.verbs` / :mod:`repro.flow.tcp` — the flow twins of
  ``repro.verbs.perftest`` and ``repro.ipoib.netperf``.
"""

from .context import activated, get_flow_mode, set_flow_mode
from .dispatch import engaged

__all__ = ["activated", "get_flow_mode", "set_flow_mode", "engaged"]
