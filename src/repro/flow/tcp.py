"""Flow twin of the :mod:`repro.ipoib.netperf` stream runner.

The controller watches every (client, server) socket pair of a netperf
run from the *outside*: it arms one receive-progress watcher at a time
on the server socket, spaced :func:`~repro.flow.models.tcp_quantum`
bytes apart and anchored at the stream total.  Each crossing feeds a
:class:`~repro.flow.crossover.PeriodDetector` whose fingerprint
carries the send window, retransmit counters, cwnd generation and
Longbow credits — the full list of crossover conditions under which
extrapolation must stop.

Which periodic structure the receive process settles into depends on
the binding constraint, and the controller works it out analytically
before sampling starts:

* **rwnd-limited** — the process repeats every send window of bytes
  (each window burst is clocked by the previous one's ACK train), so
  the detector's burst length is the window in quanta;
* **CPU/link-limited** — uniform segment cadence, period one, with a
  bounded Sturmian sampling jitter because thresholds that are not
  segment-aligned slide across segment boundaries;
* **RC-window-limited** (IPoIB connected mode) — the 16-message RC QP
  send window stalls the sender every ``rc_send_window * mss`` bytes, a
  grid incommensurate with the sampling quantum; the integer part of
  stalls-per-quantum is part of every gap and the fractional part
  ``alpha`` surfaces as an extra stall in an analytically known
  fraction of quanta (:class:`_StallTrain`).

Once *every* stream of the run is simultaneously confirmed-periodic,
stall-accounted and has enough unsent bytes beyond the in-flight set
(collapse is atomic across streams — halting one would shift CPU and
link contention for the rest), each client is halted via
``Socket.flow_halt``, the skipped bytes' wire footprint is accounted
on the WAN link, and one analytic completion per stream forces the
server's receive cursor to the stream total at the predicted time of
the final threshold crossing.  The measurement code in the packet twin
is untouched: its ``recv_bytes(total)`` watcher resolves exactly as if
the last segment had arrived.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..sim import Simulator
from ..tcp.socket import Socket, TcpStack
from . import models
from .crossover import PeriodDetector

__all__ = ["flow_stream_controller", "FlowStreamController", "PACKET_TWIN"]

#: The packet-mode module this one must stay in lockstep with (PAR304).
PACKET_TWIN = "repro.ipoib.netperf"

#: Unsent bytes required beyond in-flight + this many send windows
#: before collapse: everything already committed must drain naturally
#: strictly before the analytic completion fires.
_DRAIN_WINDOWS = 2

#: Sample floor for :attr:`PeriodDetector.stable` — gives the gap mean
#: enough averaging depth before extrapolating hundreds of quanta.
_MIN_SAMPLES = 12

#: Minimum analytic tail, in segments.  Collapse skips the final-drain
#: and teardown end effects (a few segment times of error); requiring
#: this many extrapolated segments keeps that fixed cost under ~0.1%
#: of the skipped span.
_MIN_COLLAPSE_SEGMENTS = 256

#: Hop overhead added to the propagation delay when estimating the RTT
#: that clocks RC window returns (HCA send/recv, switch, Longbow).
_RTT_FIXED_US = 10.0


def flow_stream_controller(sim: Simulator, stack_a: TcpStack,
                           stack_b: TcpStack,
                           n_streams: int) -> "FlowStreamController":
    """Factory hook the netperf twin calls when flow mode is engaged."""
    return FlowStreamController(sim, stack_a, stack_b, n_streams)


class _StallTrain:
    """Analytic model of the RC-window stall beat under IPoIB-RC.

    When the RC QP send window is the binding constraint, the sender
    stalls once per ``rc_send_window * mss`` bytes.  Each sampling
    quantum therefore contains ``floor(spacing / cycle)`` or
    ``ceil(...)`` stalls; the extra-stall quanta form a Beatty sequence
    with density exactly ``alpha = frac(spacing / cycle)``.  The base
    detector proves the floor pattern between extra stalls; this
    tracker spots the ceil outliers (*sightings*), checks their excess
    is reproducible, and extrapolates the remaining ones analytically —
    refining ``alpha`` from the observed sighting spacing once two have
    been seen.
    """

    def __init__(self, alpha: float, beta_hint_us: float):
        self.alpha = alpha
        #: Analytic cost of one extra stall: an RTT of window-credit
        #: wait minus the CPU time the sender would have spent anyway.
        self.beta_hint_us = beta_hint_us
        #: ``(sample_index, excess_us)`` per spotted extra-stall quantum.
        self.sightings: List[Tuple[int, float]] = []
        self._recent: Deque[float] = deque(maxlen=9)

    def observe(self, idx: int, gap: float) -> None:
        """Classify one consecutive-sample gap against the clean base.

        The base is the median of recent gaps — robust against the
        (minority) stall outliers and against the short pipe-fill
        transient, which ages out of the window before classification
        starts.
        """
        if len(self._recent) >= 5:
            base = sorted(self._recent)[len(self._recent) // 2]
            if gap > base * 1.3:
                self.sightings.append((idx, gap - base))
                gap = base  # keep the rolling window stall-free
        self._recent.append(gap)

    def steady(self, tol_us: float) -> bool:
        """The stall cost is proven reproducible: either a single
        sighting whose excess matches the analytic window-stall cost
        (the mechanism is confirmed, no need to wait for a second), or
        two-plus sightings whose excesses agree with each other.  A
        drifting excess (beat nearly commensurate with the RC cycle)
        fails here forever and the stream stays packet-mode."""
        if not self.sightings:
            return False
        excesses = [e for _, e in self.sightings]
        if len(excesses) == 1:
            margin = max(0.1 * self.beta_hint_us, 10.0 * tol_us)
            return abs(excesses[0] - self.beta_hint_us) <= margin
        return max(excesses) - min(excesses) <= 10.0 * tol_us

    def excess_after(self, final_idx: int) -> float:
        """Total extra-stall time expected between the last observed
        sample and ``final_idx``, from the Beatty density anchored at
        the first sighting.

        The analytic density is exact when the RC-window mechanism is
        really what drives the stalls, so it is preferred whenever the
        observed sighting spacing is consistent with it; the measured
        density only takes over when the observations contradict the
        model."""
        if not self.sightings:
            return 0.0
        alpha = self.alpha
        if len(self.sightings) >= 2:
            span = self.sightings[-1][0] - self.sightings[0][0]
            measured = (len(self.sightings) - 1) / span
            if abs(measured - alpha) > 0.3 * alpha:
                alpha = measured
        beta = sum(e for _, e in self.sightings) / len(self.sightings)
        expected = 1.0 + (final_idx - self.sightings[0][0]) * alpha
        remaining = max(0.0, round(expected) - len(self.sightings))
        return remaining * beta


class _Stream:
    """One client->server stream: thresholds, detector, collapse."""

    def __init__(self, ctl: "FlowStreamController", server: Socket):
        self.ctl = ctl
        self.server = server
        self.client: Optional[Socket] = None
        # Replaced with the tuned detector in attach_client.
        self.detector = PeriodDetector(window_quanta=1)
        self.stall: Optional[_StallTrain] = None
        self._stall_possible = False
        self._jitter_tol = 0.0
        self._dense_resid_us = 0.0
        self.total = 0
        self.thresholds: List[int] = []
        self.next_idx = 0
        self.sampled_idx = -1
        self.samples = 0
        self._prev_time: Optional[float] = None
        #: (acks_sent, rcv_next) at each threshold — the ACK-cadence
        #: series the wire accounting extrapolates from.
        self._snaps: List[tuple] = []
        self.halted = False

    # -- pairing / arming -------------------------------------------------
    def attach_client(self, client: Socket) -> None:
        self.client = client
        self.total = client.snd_total
        self.thresholds = self._make_thresholds(client)
        self._arm()

    def _make_thresholds(self, client: Socket) -> List[int]:
        """Sampling thresholds whose byte offsets repeat every window,
        plus the analytically derived detector tuning (burst length,
        jitter tolerance, RC stall train) for this stream's regime.

        Thresholds laid out as ``total - a*W - i*W//n`` with ``n``
        cycles per send window sample a series that is exactly periodic
        with period ``n`` in the rwnd-limited steady state — whatever
        the segmentation (runt segments included).  ``n`` is chosen so
        the spacing stays near one
        :func:`~repro.flow.models.tcp_quantum` but never below one MSS
        (a single segment must not cross two thresholds).
        """
        q0 = models.tcp_quantum(client.mss)
        w = int(client.send_window)
        if w <= 0:
            w, n = q0, 1
        else:
            n = max(1, int(round(w / q0)))
            while n > 1 and w // n < client.mss:
                n -= 1
        spacing = w // n
        profile = client.profile
        # Per-segment service time of the CPU-side send path — the
        # cadence unit of every non-idle gap, and the size of the
        # Sturmian sampling jitter when thresholds are not
        # segment-aligned (misalignment ``mis`` is how far the spacing
        # sits from a whole number of segments).
        seg_us = (profile.tcp_segment_fixed_us
                  + client.mss * profile.tcp_per_byte_us)
        r = (spacing % client.mss) / client.mss
        mis = 2.0 * min(r, 1.0 - r)
        self._jitter_tol = min(2.5 * seg_us, 8.0 * seg_us * mis)
        wq = n
        self.stall = None
        self._stall_possible = False
        if self.ctl.mode == "rc":
            rc_cycle = profile.rc_send_window * client.mss
            if 0 < rc_cycle <= w:
                # The RC QP window binds before (or with) the TCP
                # window: the burst grid is the RC cycle, and the
                # stall-per-quantum count beats against the sampling
                # grid with fractional density alpha.
                x = spacing / rc_cycle
                alpha = x - int(x)
                wan = self.ctl.wan
                delay = (wan.delay_us if wan is not None else 0.0)
                rtt_us = 2.0 * (delay + _RTT_FIXED_US)
                beta_hint = rtt_us - rc_cycle * seg_us / client.mss
                if alpha > 1e-9:
                    beat = 1.0 / alpha
                    if beat <= 8.0:
                        # Dense beat: the extra stall recurs within the
                        # hypothesis range and is part of the base
                        # period itself — but only the rational part
                        # 1/wq of the density is; the remainder is a
                        # second-level stall train the extrapolation
                        # would silently drop.  Its per-quantum cost is
                        # checked against the observed gap at
                        # eligibility time.
                        wq = max(1, int(round(beat)))
                        self._dense_resid_us = (abs(alpha - 1.0 / wq)
                                                * max(0.0, beta_hint))
                    else:
                        wq = 1
                        self.stall = _StallTrain(alpha, max(0.0, beta_hint))
                        # Stalls only exist if the RC window drains
                        # slower than the CPU can fill it; when the
                        # estimate says they cannot, an empty sighting
                        # list needs no waiting period (any surprise
                        # sighting still blocks collapse via steady()).
                        rc_rate = rc_cycle / rtt_us
                        cpu_rate = client.mss / seg_us
                        self._stall_possible = rc_rate < 2.0 * cpu_rate
                else:
                    wq = 1
        self.detector = PeriodDetector(
            window_quanta=wq,
            jitter_unit_us=8.0 * seg_us * mis,
            jitter_cap_us=2.5 * seg_us,
            min_samples=_MIN_SAMPLES)
        thresholds = set()
        a = 0
        while self.total - a * w > 0:
            for i in range(n):
                t = self.total - a * w - i * w // n
                if t > 0:
                    thresholds.add(t)
            a += 1
        return sorted(thresholds)

    def _arm(self) -> None:
        # Skip thresholds already crossed (their crossing time was never
        # observed, so they contribute no sample) and arm the next one.
        server = self.server
        while (self.next_idx < len(self.thresholds)
               and server.rcv_next >= self.thresholds[self.next_idx]):
            self.next_idx += 1
        if self.next_idx >= len(self.thresholds):
            return
        evt = self.ctl.sim.event()
        server._rcv_watchers.append((self.thresholds[self.next_idx], evt))
        evt.callbacks.append(self._on_threshold)

    def _on_threshold(self, _evt) -> None:
        if self.halted:
            return
        self.sampled_idx = self.next_idx
        self.next_idx += 1
        now = self.ctl.sim.now
        if self.stall is not None and self._prev_time is not None:
            self.stall.observe(self.samples, now - self._prev_time)
        self._prev_time = now
        self.samples += 1
        self._snaps.append((self.server.acks_sent, self.server.rcv_next))
        if not self.detector.gave_up:
            self.detector.add(now, self._fingerprint())
        self._arm()
        self.ctl.maybe_collapse()

    def _fingerprint(self) -> tuple:
        c, s = self.client, self.server
        fp = [c.send_window, c.retransmits, s.retransmits,
              c.cc.generation, c._closed, s._closed]
        wan = self.ctl.wan
        if wan is not None:
            # Raw credit counters fluctuate with every in-flight frame;
            # the crossover that matters is buffer *pressure*.  Quantize
            # to a low-credit flag (below 1/8th of the Longbow pool) so
            # healthy steady states fingerprint identically while credit
            # starvation still forces packet mode.
            for unit in (wan.a, wan.b):
                fp.append(unit.credits * 8
                          < unit.profile.longbow_buffer_bytes)
        return tuple(fp)

    # -- collapse ---------------------------------------------------------
    @property
    def _remaining_quanta(self) -> int:
        return len(self.thresholds) - 1 - self.sampled_idx

    def _stall_accounted(self) -> bool:
        """The RC stall train (if one can exist) is either proven
        reproducible or proven absent."""
        if self.stall is None:
            return True
        if self.stall.sightings:
            return self.stall.steady(self._jitter_tol)
        if not self._stall_possible:
            return True
        # Stalls are plausible but none seen yet: wait until the Beatty
        # density says two should have appeared, then conclude the
        # regime is genuinely stall-free (e.g. link-limited after all).
        return self.samples * self.stall.alpha >= 2.0

    def eligible(self) -> bool:
        if self.halted or self.client is None:
            return False
        # Parallel streams share the WAN link: each detector learns the
        # *contended* spacing, but the phase interleaving between
        # streams drifts over the extrapolated horizon in a way no
        # single-stream period model captures.  Measured deviation sits
        # above the 1% equivalence budget, so multi-stream runs always
        # stay in packet mode.
        if self.ctl.n_streams != 1:
            return False
        if not self.detector.stable or self._remaining_quanta < 1:
            return False
        if not self._stall_accounted():
            return False
        # Dense-beat RC cells: the unmodelled residual stall density
        # must be negligible against the proven per-quantum gap, or the
        # extrapolation error would grow with the horizon (the bound is
        # deliberately tight — near-rational beats also creep).
        if (self._dense_resid_us > 0.002
                * self.detector.gap / self.detector.period):
            return False
        c = self.client
        unsent = c.snd_total - c.snd_next
        inflight = c.snd_next - self.server.rcv_next
        if unsent < inflight + _DRAIN_WINDOWS * c.send_window:
            return False
        # End effects (final window drain, teardown handshake) cost a
        # few segment times regardless of transfer size; amortize them
        # over a long enough analytic tail that they stay well inside
        # the 1% bandwidth budget.
        if unsent < _MIN_COLLAPSE_SEGMENTS * c.mss:
            return False
        segs = -(-int(c.send_window) // c.mss)
        window_wire = segs * models.tcp_segment_wire_bytes(
            c.profile, c.mss, self.ctl.mode)
        return models.longbow_headroom_ok(c.profile, window_wire)

    def collapse(self) -> None:
        self.halted = True
        c = self.client
        m = self._remaining_quanta
        t_end = self.detector.predict(m)
        if self.stall is not None:
            t_end += self.stall.excess_after(self.samples - 1 + m)
        skipped = c.snd_total - c.snd_next
        c.flow_halt()
        self._account(skipped)
        self.ctl.sim.schedule_flow_completion(
            max(0.0, t_end - self.ctl.sim.now), self._force)

    def _ack_ratio(self) -> float:
        """Pure TCP ACKs per delivered segment, measured over whole
        confirmed periods of the sampled steady state.

        Delayed ACKs coalesce every ``tcp_ack_every`` segments only
        while the RX backlog stays non-empty; a CPU-paced receiver
        drains per segment and ACKs every one, and mixed regimes sit in
        between with a cadence periodic in the window.  Measuring over
        ``c`` whole periods (like the detector's gap mean) excludes the
        slow-start prefix, whose cadence differs from steady state.
        """
        det, snaps = self.detector, self._snaps
        span = 0
        if det.period:
            span = max(1, (det.valid_n - 1) // det.period) * det.period
        if not 0 < span < len(snaps):
            span = len(snaps) - 1
        a1, d1 = snaps[-1]
        a0, d0 = snaps[-1 - span] if span else (0, 0)
        segs = max(1.0, (d1 - d0) / self.client.mss)
        return min(1.0, (a1 - a0) / segs)

    def _account(self, skipped: int) -> None:
        wan = self.ctl.wan
        if wan is None or skipped <= 0:
            return
        c = self.client
        profile = c.profile
        ratio = self._ack_ratio()
        skipped_segs = -(-skipped // c.mss)
        forward, reverse, segments, acks = models.tcp_stream_wire_bytes(
            profile, skipped, c.mss, self.ctl.mode,
            acks=max(1, round(skipped_segs * ratio)))
        rc_acks = segments if self.ctl.mode == "rc" else 0
        link = wan.wan_link
        link.account_flow_bytes(
            link.a, forward,
            frames=segments + (acks if rc_acks else 0))
        link.account_flow_bytes(link.b, reverse, frames=acks + rc_acks)

    def _force(self) -> None:
        """Analytic completion: the last skipped byte 'arrives' now."""
        server = self.server
        server.rcv_next = self.total
        if server._rcv_watchers:
            still = []
            for target, evt in server._rcv_watchers:
                if server.rcv_next >= target:
                    evt.succeed(server.rcv_next)
                else:
                    still.append((target, evt))
            server._rcv_watchers = still


class FlowStreamController:
    """Per-run flow controller over all streams of one netperf run."""

    def __init__(self, sim: Simulator, stack_a: TcpStack,
                 stack_b: TcpStack, n_streams: int):
        self.sim = sim
        self.stack_a = stack_a
        self.stack_b = stack_b
        self.n_streams = n_streams
        fabric = getattr(stack_a.iface.network, "fabric", None)
        self.wan = getattr(fabric, "wan", None)
        self.mode = stack_a.iface.network.mode
        self.streams: List[_Stream] = []
        self._by_port: Dict[int, _Stream] = {}
        self.done = False

    def watch_server(self, sock: Socket) -> None:
        """Register a freshly accepted server-side socket."""
        stream = _Stream(self, sock)
        self.streams.append(stream)
        # The server socket's peer port is the client's local port.
        self._by_port[sock.peer_port] = stream

    def watch_client(self, sock: Socket) -> None:
        """Register a client socket once its stream is fully queued."""
        stream = self._by_port.get(sock.local_port)
        if stream is not None and stream.client is None:
            stream.attach_client(sock)

    def maybe_collapse(self) -> None:
        if self.done or len(self.streams) < self.n_streams:
            return
        if not all(s.eligible() for s in self.streams):
            return
        self.done = True
        for stream in self.streams:
            stream.collapse()
