"""Process-wide flow-acceleration mode.

The CLI (``--flow auto|on|off``) and the experiment scheduler set the
active mode here; the verbs/netperf runners read it through
:func:`repro.flow.dispatch.engaged`, and
:class:`repro.exp.cache.ResultCache` folds it into cache keys **only
when set to an accelerating mode**, so packet-mode cache entries keep
their exact historical keys.

Import-light on purpose (no simulator dependencies), mirroring
:mod:`repro.faults.context`: the cache and scheduler can import it
without pulling the flow machinery in.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["VALID_MODES", "get_flow_mode", "set_flow_mode", "activated"]

#: Accepted mode values; ``None`` (the default) behaves like ``"off"``
#: but is distinguishable, so cache keys only change when a user asked
#: for acceleration explicitly.
VALID_MODES = (None, "auto", "on", "off")

_flow_mode: Optional[str] = None


def get_flow_mode() -> Optional[str]:
    """The flow mode currently in force, or ``None``."""
    return _flow_mode


def set_flow_mode(mode: Optional[str]) -> Optional[str]:
    """Install ``mode`` (empty/None clears it); returns the previous one."""
    if mode not in VALID_MODES and mode != "":
        raise ValueError(
            f"flow mode must be one of auto/on/off, not {mode!r}")
    global _flow_mode
    previous = _flow_mode
    _flow_mode = mode or None
    return previous


@contextmanager
def activated(mode: Optional[str]) -> Iterator[None]:
    """Scope with ``mode`` active; restores the previous mode on exit."""
    previous = set_flow_mode(mode)
    try:
        yield
    finally:
        set_flow_mode(previous)
