"""Analytic wire-byte and steady-state accounting for flow mode.

When a collapse skips simulating the tail of a bulk transfer, the bytes
that *would* have crossed each link still have to be accounted (link
``bytes_carried`` totals feed the conservation properties and the
Longbow buffer-headroom gate).  The formulas here mirror the packet
path exactly:

* verbs messages serialize as one frame of
  ``wire_size(size, ib_mtu, header)`` with the RC/UD per-IB-packet
  header (see :mod:`repro.verbs.rc` / :mod:`repro.verbs.ud`), RC adds
  one ``rc_ack_bytes`` ACK frame per delivered message;
* TCP segments ride IPoIB: the interface prepends ``ipoib_header_bytes``
  to ``seg_len + tcp_header_bytes`` and ships one UD datagram or RC
  message per segment; delayed ACKs flow back every ``tcp_ack_every``
  segments.
"""

from __future__ import annotations

from typing import Optional

from ..calibration import HardwareProfile
from ..fabric.packet import wire_size

__all__ = [
    "tcp_quantum",
    "verbs_data_wire_bytes",
    "verbs_ack_wire_bytes",
    "tcp_segment_wire_bytes",
    "tcp_ack_wire_bytes",
    "tcp_stream_wire_bytes",
    "longbow_headroom_ok",
]


def tcp_quantum(mss: int) -> int:
    """Sampling quantum for the TCP crossover detector, in bytes.

    A whole number of MSS-sized segments close to 64 KiB: thresholds
    spaced by the quantum land exactly on segment boundaries, so in a
    warm steady state (pure-MSS segments, delayed ACK every other one)
    consecutive crossings are an *integer* number of identical
    segment-service periods apart — which is what lets the detector
    prove periodicity with exact gap equality instead of a fit.
    """
    if mss <= 0:
        raise ValueError("mss must be positive")
    return mss * max(1, round(65536 / mss))


def verbs_data_wire_bytes(profile: HardwareProfile, size: int,
                          transport: str) -> int:
    """Wire bytes of one verbs message of ``size`` payload bytes."""
    header = (profile.rc_packet_header if transport == "rc"
              else profile.ud_packet_header)
    return wire_size(size, profile.ib_mtu, header)


def verbs_ack_wire_bytes(profile: HardwareProfile, transport: str) -> int:
    """Reverse-direction wire bytes per delivered verbs message."""
    return profile.rc_ack_bytes if transport == "rc" else 0


def tcp_segment_wire_bytes(profile: HardwareProfile, seg_len: int,
                           mode: str) -> int:
    """Wire bytes of one TCP data segment over IPoIB (``ud``/``rc``)."""
    wire_payload = (seg_len + profile.tcp_header_bytes
                    + profile.ipoib_header_bytes)
    header = (profile.rc_packet_header if mode == "rc"
              else profile.ud_packet_header)
    return wire_size(wire_payload, profile.ib_mtu, header)


def tcp_ack_wire_bytes(profile: HardwareProfile, mode: str) -> int:
    """Wire bytes of one bare TCP ACK over IPoIB."""
    return tcp_segment_wire_bytes(profile, 0, mode)


def tcp_stream_wire_bytes(profile: HardwareProfile, nbytes: int, mss: int,
                          mode: str, acks: Optional[int] = None) -> tuple:
    """``(forward_bytes, reverse_bytes, segments, acks)`` for ``nbytes``
    of stream payload sent as full-MSS segments plus one remainder.

    ``acks`` is the number of pure TCP ACKs the receiver will emit;
    when not supplied it falls back to the nominal delayed-ACK cadence
    (every ``tcp_ack_every``-th segment).  The actual cadence is
    regime-dependent — a CPU-paced receiver drains its backlog after
    every segment and ACKs each one — so callers that have observed a
    live prefix should pass the measured count instead.

    Over IPoIB-RC every delivered RC message is acknowledged at the IB
    level too, so each data segment adds an RC ACK to the reverse path
    and each TCP ACK (itself an RC message) adds one to the forward
    path.
    """
    full, rem = divmod(nbytes, mss)
    segments = full + (1 if rem else 0)
    forward = full * tcp_segment_wire_bytes(profile, mss, mode)
    if rem:
        forward += tcp_segment_wire_bytes(profile, rem, mode)
    if acks is None:
        acks = -(-segments // profile.tcp_ack_every)  # ceil
    reverse = acks * tcp_ack_wire_bytes(profile, mode)
    if mode == "rc":
        reverse += segments * profile.rc_ack_bytes
        forward += acks * profile.rc_ack_bytes
    return forward, reverse, segments, acks


def longbow_headroom_ok(profile: HardwareProfile,
                        window_wire_bytes: float) -> bool:
    """True while the in-flight window stays clear of the Longbow
    buffer-crossover regime (flow mode must not extrapolate across a
    credit-exhaustion transition the detector has not seen)."""
    return window_wire_bytes < 0.9 * profile.longbow_buffer_bytes
