"""A striped parallel filesystem over RDMA (Lustre-flavoured).

The paper's conclusions name parallel filesystems over IB WAN as future
work (its related work [6] measured Lustre over the UltraScience Net).
This module builds the minimal honest version of that system on the
repository's own substrates:

* ``N`` **object storage servers** (OSSes), each an RDMA-RPC NFS-style
  data server exporting one object per file;
* a **metadata server** (MDS) mapping a file to its stripe layout;
* a **client** that fans read requests out across the stripes —
  which over a long pipe behaves exactly like the paper's parallel
  streams: every OSS connection contributes its own RC window toward
  covering the bandwidth-delay product.

Data movement reuses :class:`repro.nfs.rpc.RdmaRpcServer` (4 KB-chunk
server-driven RDMA writes), so a 1-stripe filesystem reproduces the
NFS/RDMA WAN collapse and striping shows how far layout parallelism can
recover it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..calibration import MB
from ..fabric.node import Node
from ..fabric.topology import Fabric
from ..nfs.rpc import RdmaRpcClient, RdmaRpcServer
from ..nfs.server import NFSServer
from ..sim import Simulator

__all__ = ["StripeLayout", "MetadataServer", "ObjectServer", "PFSClient",
           "build_pfs", "run_pfs_read"]

DEFAULT_STRIPE = 1 * MB


@dataclass(frozen=True)
class StripeLayout:
    """Which objects hold a file and how it is striped across them."""

    path: str
    size: int
    stripe_size: int
    oss_indices: Tuple[int, ...]

    def locate(self, offset: int) -> Tuple[int, int]:
        """Map a file offset to ``(oss_index, object_offset)``."""
        if not 0 <= offset < self.size:
            raise ValueError(f"offset {offset} outside file of {self.size}")
        stripe_no = offset // self.stripe_size
        oss = self.oss_indices[stripe_no % len(self.oss_indices)]
        row = stripe_no // len(self.oss_indices)
        return oss, row * self.stripe_size + offset % self.stripe_size


class MetadataServer:
    """Maps paths to stripe layouts (the MDS; consulted once per open)."""

    def __init__(self, sim: Simulator, n_oss: int):
        if n_oss < 1:
            raise ValueError("need at least one OSS")
        self.sim = sim
        self.n_oss = n_oss
        self._layouts: Dict[str, StripeLayout] = {}
        self.opens = 0

    def create(self, path: str, size: int,
               stripe_size: int = DEFAULT_STRIPE,
               stripe_count: int = 0) -> StripeLayout:
        count = stripe_count or self.n_oss
        if count > self.n_oss:
            raise ValueError(f"stripe_count {count} > {self.n_oss} OSSes")
        layout = StripeLayout(path, size, stripe_size,
                              tuple(range(count)))
        self._layouts[path] = layout
        return layout

    def open(self, path: str) -> StripeLayout:
        self.opens += 1
        try:
            return self._layouts[path]
        except KeyError:
            raise FileNotFoundError(path) from None


class ObjectServer:
    """One OSS: an RDMA data server exporting per-file objects."""

    def __init__(self, node: Node, index: int):
        self.node = node
        self.index = index
        self.backend = NFSServer(node, copies_data=False)
        self.rpc = RdmaRpcServer(node, self.backend.handle)

    def ensure_object(self, path: str, size: int) -> None:
        if path not in self.backend.exports:
            self.backend.export(path, size)
        else:
            self.backend.exports[path].size = max(
                self.backend.exports[path].size, size)


class PFSClient:
    """Client with one RDMA connection per OSS (its own window each)."""

    def __init__(self, node: Node, mds: MetadataServer,
                 osses: Sequence[ObjectServer]):
        self.node = node
        self.sim = node.sim
        self.mds = mds
        self.osses = list(osses)
        self._conns: List[RdmaRpcClient] = [
            RdmaRpcClient(node, oss.rpc) for oss in self.osses]
        self.bytes_read = 0

    def read(self, path: str, offset: int, count: int):
        """Read ``count`` bytes at ``offset``, fanned across stripes."""
        layout = self.mds.open(path)
        count = min(count, layout.size - offset)
        if count <= 0:
            return 0
        # split the request at stripe boundaries, issue all in parallel
        pieces = []
        pos = offset
        while pos < offset + count:
            oss, obj_off = layout.locate(pos)
            in_stripe = layout.stripe_size - (pos % layout.stripe_size)
            n = min(in_stripe, offset + count - pos)
            pieces.append((oss, obj_off, n))
            pos += n

        def fetch(oss_idx, obj_off, n):
            result = yield from self._conns[oss_idx].call(
                "read", (path, obj_off, n), req_bytes=0)
            return result[1]

        workers = [self.sim.process(fetch(*p), name="pfs.read")
                   for p in pieces]
        results = yield self.sim.all_of(workers)
        got = sum(results.values())
        self.bytes_read += got
        return got


def build_pfs(fabric: Fabric, server_nodes: Sequence[Node],
              client_node: Node) -> Tuple[MetadataServer, PFSClient]:
    """Stand up an MDS + one OSS per server node + a client."""
    sim = fabric.sim
    mds = MetadataServer(sim, n_oss=len(server_nodes))
    osses = [ObjectServer(node, i) for i, node in enumerate(server_nodes)]
    client = PFSClient(client_node, mds, osses)

    def _create(path, size, stripe_size=DEFAULT_STRIPE, stripe_count=0):
        layout = mds.create(path, size, stripe_size, stripe_count)
        per_oss = -(-size // len(layout.oss_indices))
        for idx in layout.oss_indices:
            osses[idx].ensure_object(path, per_oss)
        return layout

    mds.create_file = _create  # convenience hook for tests/benches
    return mds, client


def run_pfs_read(sim: Simulator, fabric: Fabric,
                 server_nodes: Sequence[Node], client_node: Node,
                 file_bytes: int, request_bytes: int = 4 * MB,
                 stripe_size: int = DEFAULT_STRIPE) -> float:
    """Sequentially read a striped file; aggregate MB/s."""
    mds, client = build_pfs(fabric, server_nodes, client_node)
    mds.create_file("/stripe", file_bytes, stripe_size=stripe_size)
    span = {}

    def main():
        t0 = sim.now
        offset = 0
        while offset < file_bytes:
            got = yield from client.read("/stripe", offset,
                                         min(request_bytes,
                                             file_bytes - offset))
            offset += got
        span["t"] = sim.now - t0

    done = sim.process(main(), name="pfs.main")
    sim.run(until=done)
    return file_bytes / span["t"]
