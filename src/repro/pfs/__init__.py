"""Striped parallel filesystem over RDMA (paper future-work extension)."""

from .striped import (MetadataServer, ObjectServer, PFSClient, StripeLayout,
                      build_pfs, run_pfs_read)

__all__ = ["StripeLayout", "MetadataServer", "ObjectServer", "PFSClient",
           "build_pfs", "run_pfs_read"]
