"""repro — reproduction of *Performance of HPC Middleware over InfiniBand
WAN* (Narravula et al., ICPP 2008) on a discrete-event IB-WAN simulator.

Quick tour
----------

>>> from repro import Simulator, build_cluster_of_clusters
>>> from repro.verbs import perftest
>>> sim = Simulator()
>>> fabric = build_cluster_of_clusters(sim, 1, 1, wan_delay_us=10.0)
>>> bw = perftest.run_send_bw(sim, fabric, fabric.cluster_a[0],
...                           fabric.cluster_b[0], size=65536, iters=32)

Sub-packages: :mod:`repro.sim` (event kernel), :mod:`repro.fabric` (IB
fabric), :mod:`repro.wan` (Longbow WAN extenders), :mod:`repro.verbs`
(RC/UD/RDMA), :mod:`repro.tcp` + :mod:`repro.ipoib` (TCP over IB),
:mod:`repro.mpi` (MVAPICH2-like library), :mod:`repro.nfs` (NFS over
RDMA / IPoIB), :mod:`repro.apps` (NAS benchmark skeletons),
:mod:`repro.obs` (metrics + tracing) and :mod:`repro.core` (the paper's
scenarios, optimizations and experiment registry).
"""

from .calibration import DEFAULT_PROFILE, KB, MB, US_PER_KM, HardwareProfile
from .fabric import (Fabric, build_back_to_back, build_cluster,
                     build_cluster_of_clusters)
from .obs import MetricsRegistry
from .sim import Simulator

__version__ = "1.1.0"

__all__ = ["Simulator", "HardwareProfile", "DEFAULT_PROFILE", "KB", "MB",
           "US_PER_KM", "Fabric", "build_back_to_back", "build_cluster",
           "build_cluster_of_clusters", "MetricsRegistry", "__version__"]
