"""Shared Receive Queues.

An SRQ lets many QPs draw receive descriptors from one pool instead of
pre-posting a ring per connection — the memory-scalability feature
MVAPICH2 uses for large jobs (thousands of connections would otherwise
pin thousands of rings).  QPs created with ``srq=`` consume from the
pool; when the pool runs dry, arrivals wait in the QP's
receiver-not-ready backlog until the application reposts (a real HCA
would fire the SRQ limit event and NAK; well-behaved apps repost first).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from ..sim import Simulator
from .ops import RecvWR

__all__ = ["SharedReceiveQueue"]


class SharedReceiveQueue:
    """A pool of receive work requests shared by multiple QPs."""

    def __init__(self, sim: Simulator, limit_event_threshold: int = 0):
        self.sim = sim
        self._wrs: Deque[RecvWR] = deque()
        self._consumers: List = []  # QPs to nudge when WRs arrive
        #: fires (via callbacks) when the pool drops below this level
        self.limit_event_threshold = limit_event_threshold
        self.limit_events = 0
        self.posted_total = 0

    def post_recv(self, wr: RecvWR) -> None:
        self._wrs.append(wr)
        self.posted_total += 1
        for qp in list(self._consumers):
            qp._on_recv_posted()

    def attach(self, qp) -> None:
        if qp not in self._consumers:
            self._consumers.append(qp)

    def detach(self, qp) -> None:
        if qp in self._consumers:
            self._consumers.remove(qp)

    def take(self) -> RecvWR:
        """Consume one descriptor; raises IndexError when empty."""
        wr = self._wrs.popleft()
        if len(self._wrs) < self.limit_event_threshold:
            self.limit_events += 1
        return wr

    def __len__(self) -> int:
        return len(self._wrs)
