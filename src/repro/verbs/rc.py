"""Reliable Connected transport.

The RC QP is where the paper's central WAN effect lives: RC guarantees
reliable in-order delivery with ACKs, which **limits the number of
messages in flight to the send window**.  Over a long pipe the window
cannot cover the bandwidth-delay product for small and medium messages,
so their bandwidth collapses while large messages still fill the pipe —
exactly Fig. 5 of the paper.

Model notes
-----------
* One :class:`~repro.fabric.packet.Frame` carries one transport-level
  message; per-IB-packet (2 KB MTU) header bytes are accounted in the
  frame's wire size, so link occupancy matches a per-packet simulation.
* ACKs are cumulative per message.  Go-back-N retransmission with a
  retry budget mirrors the IB RC semantics; on exhaustion the QP moves
  to the error state and flushes, as a real HCA would.
* Receive-not-ready is modelled by buffering in-order arrivals until a
  receive is posted (well-behaved apps pre-post; tests exercise both).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Any, Deque, Optional

from ..calibration import HardwareProfile
from ..fabric.node import HCA
from ..fabric.packet import Frame, wire_size
from ..sim import URGENT, ReusableTimeout, Simulator, Store
from .cq import CompletionQueue
from .ops import (
    AtomicWR,
    Opcode,
    RDMAReadWR,
    RDMAWriteWR,
    SendWR,
    WCStatus,
    WorkCompletion,
    WorkRequest,
)
from .qp import QPState, QueuePair

__all__ = ["RCQueuePair", "connect_rc_pair", "reconnect_rc_pair"]

DATA = "rc_data"
WRITE = "rc_write"
READ_REQ = "rc_read_req"
READ_RESP = "rc_read_resp"
ATOMIC_REQ = "rc_atomic_req"
ATOMIC_RESP = "rc_atomic_resp"
ACK = "rc_ack"

_KIND_BY_OPCODE = {Opcode.SEND: DATA,
                   Opcode.RDMA_WRITE: WRITE,
                   Opcode.RDMA_WRITE_WITH_IMM: WRITE,
                   Opcode.RDMA_READ: READ_REQ,
                   Opcode.ATOMIC_FETCH_ADD: ATOMIC_REQ,
                   Opcode.ATOMIC_CMP_SWAP: ATOMIC_REQ}

#: Kill switch for the callback-mode send pump, flipped only by
#: :func:`repro.sim._legacy.legacy_dispatch` (see
#: ``repro.fabric.link._FAST_PUMP``).
_FAST_PUMP = True


class RCQueuePair(QueuePair):
    """Reliable-connected queue pair."""

    transport = "rc"

    def __init__(self, sim: Simulator, hca: HCA, send_cq: CompletionQueue,
                 recv_cq: CompletionQueue, profile: HardwareProfile,
                 send_window: Optional[int] = None, srq=None):
        super().__init__(sim, hca, send_cq, recv_cq, profile, srq=srq)
        self.send_window = send_window or profile.rc_send_window
        self.remote_lid: Optional[int] = None
        self.remote_qpn: Optional[int] = None
        # sender state
        self._send_backlog: Store = Store(sim)
        self._next_psn = 0
        self._max_acked = -1
        self._unacked: "OrderedDict[int, _TxEntry]" = OrderedDict()
        self._window_free = sim.event()
        self._window_free.succeed()  # window starts open
        self.retransmissions = 0
        # receiver state
        self._expected_psn = 0
        self._rnr_backlog: Deque[Frame] = deque()
        # stats
        self.bytes_sent = 0
        self.messages_sent = 0
        self._inflight_bytes = 0
        # error/recovery state: the event fires when the QP enters the
        # error state (creating an unscheduled event is free, so the
        # clean path pays nothing for it).
        self.error_event = sim.event()
        self.reconnects = 0
        self._error_at: Optional[float] = None
        self._timer_alive = True
        m = getattr(sim, "metrics", None)
        if m is not None:
            self._m_stall_events = m.counter("rc", "window_stall_events")
            self._m_stall_us = m.counter("rc", "window_stall_us")
            self._m_retx = m.counter("rc", "retransmits")
            self._m_wqe = m.counter("rc", "wqe_completions")
            self._m_bytes = m.counter("rc", "bytes_sent")
            self._m_inflight_msgs = m.gauge("rc", "inflight_msgs")
            self._m_inflight_bytes = m.gauge("rc", "inflight_bytes")
        else:
            self._m_stall_events = self._m_stall_us = self._m_retx = None
            self._m_wqe = self._m_bytes = None
            self._m_inflight_msgs = self._m_inflight_bytes = None
        # One reusable timeout per pump: each has at most one sleep
        # outstanding, so re-arming the same record is heap-identical
        # to constructing a fresh Timeout per iteration.
        self._send_wait = ReusableTimeout(sim)
        self._rtx_wait = ReusableTimeout(sim)
        self._pending_wr: Optional[WorkRequest] = None
        # Callback-mode send pump when uninstrumented (same event
        # trajectory as the generator, no resumes); the retransmit
        # timer stays a generator either way — it fires rarely.
        if _FAST_PUMP and m is None:
            sim.call_at(0.0, self._next_wr, priority=URGENT,
                        cancellable=False)
        else:
            sim.process(self._send_pump(), name=f"rcqp{self.qpn}.send")
        self._timer_kick = Store(sim)
        sim.process(self._retransmit_timer(), name=f"rcqp{self.qpn}.rtx")

    # -- connection management --------------------------------------------
    def connect(self, remote_lid: int, remote_qpn: int) -> None:
        if self.state is not QPState.INIT:
            raise RuntimeError(f"QP {self.qpn}: connect() in {self.state}")
        self.remote_lid = remote_lid
        self.remote_qpn = remote_qpn
        self.state = QPState.RTS
        if not self._timer_alive:
            # The retransmit timer exited when the QP entered the error
            # state; a reconnect needs a fresh one.
            self._timer_alive = True
            self.sim.process(self._retransmit_timer(),
                             name=f"rcqp{self.qpn}.rtx")
        if self._error_at is not None:
            self.reconnects += 1
            m = getattr(self.sim, "metrics", None)
            if m is not None:
                m.histogram("rc", "recovery_us").observe(
                    self.sim.now - self._error_at)
            self._error_at = None

    def reset(self) -> None:
        """``ibv_modify_qp(..., IBV_QPS_RESET)`` analogue.

        Flushes anything still queued, clears all transport state (PSNs,
        unacked messages, RNR backlog) and returns the QP to ``INIT`` so
        :meth:`connect` can re-establish it after an error.
        """
        for entry in self._unacked.values():
            self.send_cq.push(WorkCompletion(
                entry.wr.wr_id, entry.wr.opcode, WCStatus.WR_FLUSH_ERR,
                entry.wr.size, self.qpn, self.sim.now))
        self._unacked.clear()
        self._inflight_bytes = 0
        self._next_psn = 0
        self._max_acked = -1
        self._expected_psn = 0
        self._rnr_backlog.clear()
        self.remote_lid = None
        self.remote_qpn = None
        self.state = QPState.INIT
        if self.error_event.triggered:
            self.error_event = self.sim.event()  # re-arm for the next error
        if self._m_inflight_msgs is not None:
            self._m_inflight_msgs.set(0)
            self._m_inflight_bytes.set(0)
        if not self._window_free.triggered:
            self._window_free.succeed()

    # -- posting ------------------------------------------------------------
    def post_send(self, wr: WorkRequest) -> None:
        if self.state is not QPState.RTS:
            raise RuntimeError(f"QP {self.qpn}: post_send in {self.state}")
        if wr.opcode is Opcode.RECV:
            raise ValueError("use post_recv for receive WRs")
        self._send_backlog.put(wr)

    # convenience wrappers mirroring the verbs API surface
    def send(self, size: int, payload: Any = None,
             priority: int = 1) -> SendWR:
        # NOTE: priority 0 reorders frames on links.  RC PSN ordering
        # tolerates that only for payload-free cumulative ACKs; sends
        # carrying protocol payloads must stay at priority 1.
        wr = SendWR(size, payload, priority=priority)
        self.post_send(wr)
        return wr

    def rdma_write(self, size: int, payload: Any = None,
                   imm: Any = None) -> RDMAWriteWR:
        wr = RDMAWriteWR(size, payload, imm=imm)
        self.post_send(wr)
        return wr

    def rdma_read(self, size: int) -> RDMAReadWR:
        wr = RDMAReadWR(size)
        self.post_send(wr)
        return wr

    def atomic_fetch_add(self, addr: int, add: int) -> AtomicWR:
        wr = AtomicWR(Opcode.ATOMIC_FETCH_ADD, addr, add=add)
        self.post_send(wr)
        return wr

    def atomic_cmp_swap(self, addr: int, compare: int,
                        swap: int) -> AtomicWR:
        wr = AtomicWR(Opcode.ATOMIC_CMP_SWAP, addr, compare=compare,
                      swap=swap)
        self.post_send(wr)
        return wr

    # -- sender ----------------------------------------------------------
    # -- callback-mode send pump (no metrics) ---------------------------
    # Mirrors _send_pump() step for step: one URGENT kick-off pop, one
    # StoreGet pop per WR, one Event pop per window stall, one overhead
    # pop per transmitted WR — at identical heap keys, no generator
    # resumes.  The stall counters are metrics-only and the registry is
    # absent here, so skipping them changes nothing observable.

    def _next_wr(self) -> None:
        backlog = self._send_backlog
        on_wr = self._on_wr
        while True:
            get = backlog.get()
            if not get.triggered:
                get.callbacks.append(self._on_wr_event)
                return
            if on_wr(get._value):
                return
            # WR flushed instantly (QP not RTS): drain the next one now,
            # iteratively, like the generator's ``continue``.

    def _on_wr_event(self, event) -> None:
        if not self._on_wr(event._value):
            self._next_wr()

    def _on_wr(self, wr: "WorkRequest") -> bool:
        """Returns False only on the instant-flush path."""
        if self.state is not QPState.RTS:
            self._flush(wr)
            return False
        if len(self._unacked) >= self.send_window:
            self._wait_window(wr)
            return True
        self.sim.call_at(self.profile.hca_send_overhead_us,
                         self._post_overhead, wr, cancellable=False)
        return True

    def _wait_window(self, wr: "WorkRequest") -> None:
        if self._window_free.processed or self._window_free.triggered:
            self._window_free = self.sim.event()
        self._pending_wr = wr
        self._window_free.callbacks.append(self._on_window_free)

    def _on_window_free(self, _event) -> None:
        wr, self._pending_wr = self._pending_wr, None
        if self.state is not QPState.RTS:
            self._flush(wr)
            self._next_wr()
            return
        if len(self._unacked) >= self.send_window:
            self._wait_window(wr)
            return
        self.sim.call_at(self.profile.hca_send_overhead_us,
                         self._post_overhead, wr, cancellable=False)

    def _post_overhead(self, wr: "WorkRequest") -> None:
        psn = self._next_psn
        self._next_psn += 1
        entry = _TxEntry(wr, psn, self.sim.now)
        self._unacked[psn] = entry
        self._inflight_bytes += wr.size
        self._transmit(entry)
        if len(self._unacked) == 1:
            self._timer_kick.put(None)  # wake the retransmit timer
        self._next_wr()

    # -- generator-mode send pump (metrics / legacy dispatch) -----------
    def _send_pump(self):
        profile = self.profile
        while True:
            wr: WorkRequest = yield self._send_backlog.get()
            if self.state is not QPState.RTS:
                self._flush(wr)
                continue
            stalled_at = None
            while len(self._unacked) >= self.send_window:
                if stalled_at is None and self._m_stall_events is not None:
                    stalled_at = self.sim.now
                    self._m_stall_events.inc()
                if self._window_free.processed or self._window_free.triggered:
                    self._window_free = self.sim.event()
                yield self._window_free
                if self.state is not QPState.RTS:
                    break
            if stalled_at is not None:
                self._m_stall_us.inc(self.sim.now - stalled_at)
            if self.state is not QPState.RTS:
                self._flush(wr)
                continue
            yield self._send_wait.arm(profile.hca_send_overhead_us)
            psn = self._next_psn
            self._next_psn += 1
            entry = _TxEntry(wr, psn, self.sim.now)
            self._unacked[psn] = entry
            self._inflight_bytes += wr.size
            if self._m_inflight_msgs is not None:
                self._m_inflight_msgs.set(len(self._unacked))
                self._m_inflight_bytes.set(self._inflight_bytes)
            self._transmit(entry)
            if len(self._unacked) == 1:
                self._timer_kick.put(None)  # wake the retransmit timer

    def _transmit(self, entry: "_TxEntry") -> None:
        wr = entry.wr
        kind = _KIND_BY_OPCODE[wr.opcode]
        size = (0 if wr.opcode in (Opcode.RDMA_READ,
                                   Opcode.ATOMIC_FETCH_ADD,
                                   Opcode.ATOMIC_CMP_SWAP) else wr.size)
        frame = Frame(
            src_lid=self.hca.lid, dst_lid=self.remote_lid,
            size=size,
            wire_bytes=wire_size(size, self.profile.ib_mtu,
                                 self.profile.rc_packet_header),
            kind=kind, src_qpn=self.qpn, dst_qpn=self.remote_qpn,
            payload=(entry.psn, wr), priority=wr.priority)
        self.bytes_sent += size
        self.messages_sent += 1
        if self._m_bytes is not None:
            self._m_bytes.inc(size)
        self.sim.call_at(self.profile.hca_wire_latency_us,
                         self.hca.transmit, frame, cancellable=False)

    # -- receiver + ACK handling ----------------------------------------------
    def handle_frame(self, frame: Frame) -> None:
        if self.state is QPState.ERROR:
            return
        if frame.kind == ACK:
            self._handle_ack(frame.payload)
        elif frame.kind in (READ_RESP, ATOMIC_RESP):
            self._handle_read_resp(frame)
        else:
            self._handle_request(frame)

    def _handle_request(self, frame: Frame) -> None:
        psn, wr = frame.payload
        if psn < self._expected_psn:
            # Duplicate from a retransmission: re-ACK, do not re-deliver.
            self._send_ack()
            return
        if psn > self._expected_psn:  # pragma: no cover - FIFO links
            return  # out-of-order: drop; sender will retransmit
        self._expected_psn += 1
        if frame.kind == READ_REQ:
            self._serve_read(frame, psn, wr)
            return
        if frame.kind == ATOMIC_REQ:
            self._serve_atomic(frame, psn, wr)
            return
        if frame.kind == DATA or (frame.kind == WRITE and wr.imm is not None):
            if not self._has_recv():
                self._rnr_backlog.append(frame)
                return
        self._deliver(frame)

    def _on_recv_posted(self) -> None:
        while self._rnr_backlog and self._has_recv():
            self._deliver(self._rnr_backlog.popleft())

    def _deliver(self, frame: Frame) -> None:
        psn, wr = frame.payload
        profile = self.profile
        if frame.kind == DATA:
            rwr = self._take_recv()
            if rwr.size < wr.size:
                raise RuntimeError(
                    f"QP {self.qpn}: recv buffer {rwr.size}B < message "
                    f"{wr.size}B (local length error)")
            def complete(rwr=rwr, wr=wr):
                self.recv_cq.push(WorkCompletion(
                    rwr.wr_id, Opcode.RECV, WCStatus.SUCCESS, wr.size,
                    self.qpn, self.sim.now, payload=wr.payload,
                    src_qp=frame.src_qpn, src_lid=frame.src_lid))
                self._send_ack()
            self._after(profile.hca_recv_overhead_us, complete)
        else:  # RDMA write: silent at the responder unless immediate
            latency = max(0.0, profile.hca_recv_overhead_us
                          - profile.rdma_write_discount_us)
            if wr.imm is not None:
                rwr = self._take_recv()
                def complete_imm(rwr=rwr, wr=wr):
                    self.recv_cq.push(WorkCompletion(
                        rwr.wr_id, Opcode.RECV, WCStatus.SUCCESS, wr.size,
                        self.qpn, self.sim.now, payload=wr.payload,
                        imm=wr.imm, src_qp=frame.src_qpn,
                        src_lid=frame.src_lid))
                    self._send_ack()
                self._after(latency, complete_imm)
            else:
                self._after(latency, self._send_ack)

    def _serve_read(self, frame: Frame, psn: int, wr: RDMAReadWR) -> None:
        resp = Frame(
            src_lid=self.hca.lid, dst_lid=frame.src_lid, size=wr.size,
            wire_bytes=wire_size(wr.size, self.profile.ib_mtu,
                                 self.profile.rc_packet_header),
            kind=READ_RESP, src_qpn=self.qpn, dst_qpn=frame.src_qpn,
            payload=(psn, wr))
        self.sim.call_at(self.profile.hca_recv_overhead_us,
                         self.hca.transmit, resp, cancellable=False)

    def _serve_atomic(self, frame: Frame, psn: int, wr: AtomicWR) -> None:
        mem = self.hca.atomic_mem
        old = mem.get(wr.addr, 0)
        if wr.opcode is Opcode.ATOMIC_FETCH_ADD:
            mem[wr.addr] = old + wr.add
        elif old == wr.compare:
            mem[wr.addr] = wr.swap
        resp = Frame(
            src_lid=self.hca.lid, dst_lid=frame.src_lid, size=8,
            wire_bytes=wire_size(8, self.profile.ib_mtu,
                                 self.profile.rc_packet_header),
            kind=ATOMIC_RESP, src_qpn=self.qpn, dst_qpn=frame.src_qpn,
            payload=(psn, wr, old))
        self.sim.call_at(self.profile.hca_recv_overhead_us,
                         self.hca.transmit, resp, cancellable=False)

    def _handle_read_resp(self, frame: Frame) -> None:
        psn = frame.payload[0]
        old = frame.payload[2] if len(frame.payload) > 2 else None
        self._complete_through(psn, atomic_result=old)
        # ACKs that arrived while the read was pending may cover later
        # sends; release them now that ordering allows it.
        self._complete_through(self._max_acked, skip_reads=True)

    def _send_ack(self) -> None:
        ack = Frame(
            src_lid=self.hca.lid, dst_lid=self.remote_lid,
            size=0, wire_bytes=self.profile.rc_ack_bytes, kind=ACK,
            src_qpn=self.qpn, dst_qpn=self.remote_qpn,
            payload=self._expected_psn - 1, priority=0)
        self.hca.transmit(ack)

    def _handle_ack(self, acked_psn: int) -> None:
        if acked_psn > self._max_acked:
            self._max_acked = acked_psn
        self._complete_through(acked_psn, skip_reads=True)

    _RESPONSE_OPS = (Opcode.RDMA_READ, Opcode.ATOMIC_FETCH_ADD,
                     Opcode.ATOMIC_CMP_SWAP)

    def _complete_through(self, psn: int, skip_reads: bool = False,
                          atomic_result=None) -> None:
        completed = 0
        while self._unacked:
            first_psn, entry = next(iter(self._unacked.items()))
            if first_psn > psn:
                break
            if skip_reads and entry.wr.opcode in self._RESPONSE_OPS:
                # Responses (not bare ACKs) complete reads/atomics.
                break
            del self._unacked[first_psn]
            self._inflight_bytes -= entry.wr.size
            payload = (atomic_result if first_psn == psn
                       and entry.wr.opcode in self._RESPONSE_OPS else None)
            self.send_cq.push(WorkCompletion(
                entry.wr.wr_id, entry.wr.opcode, WCStatus.SUCCESS,
                entry.wr.size, self.qpn, self.sim.now, payload=payload))
            completed += 1
        if completed:
            if self._m_wqe is not None:
                self._m_wqe.inc(completed)
                self._m_inflight_msgs.set(len(self._unacked))
                self._m_inflight_bytes.set(self._inflight_bytes)
            if not self._window_free.triggered:
                self._window_free.succeed()

    # -- reliability ------------------------------------------------------
    def _retransmit_timer(self):
        timeout_us = self.profile.rc_retransmit_timeout_us
        while True:
            if not self._unacked:
                yield self._timer_kick.get()
                continue
            entry = next(iter(self._unacked.values()))
            deadline = entry.sent_at + timeout_us
            if deadline > self.sim.now:
                yield self._rtx_wait.arm(deadline - self.sim.now)
            if self.state is QPState.ERROR:
                self._timer_alive = False
                return
            if not self._unacked:
                continue
            entry = next(iter(self._unacked.values()))
            if entry.sent_at + timeout_us > self.sim.now:
                continue  # progress was made; re-evaluate
            entry.retries += 1
            if entry.retries > self.profile.rc_retry_count:
                self._enter_error()
                self._timer_alive = False
                return
            # Go-back-N: resend every unacked message in order.
            self.retransmissions += len(self._unacked)
            if self._m_retx is not None:
                self._m_retx.inc(len(self._unacked))
            for e in self._unacked.values():
                e.sent_at = self.sim.now
                self._transmit(e)

    def _enter_error(self) -> None:
        self.state = QPState.ERROR
        self._error_at = self.sim.now
        m = getattr(self.sim, "metrics", None)
        if m is not None:
            # Registered lazily: only errored runs grow this series.
            m.counter("rc", "qp_errors").inc()
        if not self.error_event.triggered:
            self.error_event.succeed(self.sim.now)
        for entry in self._unacked.values():
            self.send_cq.push(WorkCompletion(
                entry.wr.wr_id, entry.wr.opcode, WCStatus.RETRY_EXC_ERR,
                entry.wr.size, self.qpn, self.sim.now))
        self._unacked.clear()
        self._inflight_bytes = 0
        if self._m_inflight_msgs is not None:
            self._m_inflight_msgs.set(0)
            self._m_inflight_bytes.set(0)
        if not self._window_free.triggered:
            self._window_free.succeed()

    def _flush(self, wr: WorkRequest) -> None:
        self.send_cq.push(WorkCompletion(
            wr.wr_id, wr.opcode, WCStatus.WR_FLUSH_ERR, wr.size,
            self.qpn, self.sim.now))

    @property
    def inflight(self) -> int:
        return len(self._unacked)


class _TxEntry:
    __slots__ = ("wr", "psn", "sent_at", "retries")

    def __init__(self, wr: WorkRequest, psn: int, sent_at: float):
        self.wr = wr
        self.psn = psn
        self.sent_at = sent_at
        self.retries = 0


def connect_rc_pair(qp_a: RCQueuePair, qp_b: RCQueuePair) -> None:
    """Out-of-band connection setup (what real apps do over sockets)."""
    qp_a.connect(qp_b.hca.lid, qp_b.qpn)
    qp_b.connect(qp_a.hca.lid, qp_a.qpn)


def reconnect_rc_pair(qp_a: RCQueuePair, qp_b: RCQueuePair) -> None:
    """Tear down and re-establish a connected pair after a QP error.

    Both QPs are reset (flushing anything still queued) and reconnected
    in one step, so neither side ever observes a half-connected peer.
    Posted receive buffers survive, as on real hardware.
    """
    qp_a.reset()
    qp_b.reset()
    connect_rc_pair(qp_a, qp_b)
