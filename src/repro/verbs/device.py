"""Verbs device context: the ``ibv_open_device`` analogue."""

from __future__ import annotations

from typing import Optional

from ..fabric.node import Node
from .cq import CompletionQueue, MemoryRegion, ProtectionDomain
from .rc import RCQueuePair, connect_rc_pair
from .srq import SharedReceiveQueue
from .ud import UDQueuePair

__all__ = ["VerbsContext", "create_connected_rc_pair", "create_ud_pair"]


class VerbsContext:
    """Per-node verbs context: PD, CQ and QP factories."""

    def __init__(self, node: Node):
        self.node = node
        self.sim = node.sim
        self.profile = node.profile
        self.pd = ProtectionDomain(name=f"{node.name}.pd")

    def create_cq(self, name: str = "cq") -> CompletionQueue:
        return CompletionQueue(self.sim, name=f"{self.node.name}.{name}")

    def register_mr(self, length: int) -> MemoryRegion:
        return MemoryRegion(self.pd, length)

    def create_srq(self) -> SharedReceiveQueue:
        return SharedReceiveQueue(self.sim)

    def create_rc_qp(self, send_cq: CompletionQueue,
                     recv_cq: CompletionQueue,
                     send_window: Optional[int] = None,
                     srq: Optional[SharedReceiveQueue] = None
                     ) -> RCQueuePair:
        return RCQueuePair(self.sim, self.node.hca, send_cq, recv_cq,
                           self.profile, send_window=send_window, srq=srq)

    def create_ud_qp(self, send_cq: CompletionQueue,
                     recv_cq: CompletionQueue,
                     srq: Optional[SharedReceiveQueue] = None
                     ) -> UDQueuePair:
        return UDQueuePair(self.sim, self.node.hca, send_cq, recv_cq,
                           self.profile, srq=srq)


def create_connected_rc_pair(node_a: Node, node_b: Node,
                             send_window: Optional[int] = None):
    """Convenience: a connected RC QP on each node, each with its own CQs.

    Returns ``(qp_a, qp_b)``.
    """
    ctx_a, ctx_b = VerbsContext(node_a), VerbsContext(node_b)
    qp_a = ctx_a.create_rc_qp(ctx_a.create_cq("scq"), ctx_a.create_cq("rcq"),
                              send_window=send_window)
    qp_b = ctx_b.create_rc_qp(ctx_b.create_cq("scq"), ctx_b.create_cq("rcq"),
                              send_window=send_window)
    connect_rc_pair(qp_a, qp_b)
    return qp_a, qp_b


def create_ud_pair(node_a: Node, node_b: Node):
    """A UD QP on each node.  Returns ``(qp_a, qp_b)``."""
    ctx_a, ctx_b = VerbsContext(node_a), VerbsContext(node_b)
    qp_a = ctx_a.create_ud_qp(ctx_a.create_cq("scq"), ctx_a.create_cq("rcq"))
    qp_b = ctx_b.create_ud_qp(ctx_b.create_cq("scq"), ctx_b.create_cq("rcq"))
    return qp_a, qp_b
