"""Verbs work requests and completions (ibv_post_send / ibv_wc analogues)."""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional, Tuple

__all__ = ["Opcode", "WCStatus", "WorkRequest", "SendWR", "RecvWR",
           "RDMAWriteWR", "RDMAReadWR", "AtomicWR", "WorkCompletion"]

_wr_ids = itertools.count(1)


class Opcode(enum.Enum):
    SEND = "send"
    RECV = "recv"
    RDMA_WRITE = "rdma_write"
    RDMA_WRITE_WITH_IMM = "rdma_write_with_imm"
    RDMA_READ = "rdma_read"
    ATOMIC_FETCH_ADD = "atomic_fetch_add"
    ATOMIC_CMP_SWAP = "atomic_cmp_swap"


class WCStatus(enum.Enum):
    SUCCESS = "success"
    RETRY_EXC_ERR = "retry_exceeded"
    WR_FLUSH_ERR = "flushed"


class WorkRequest:
    """Base work request."""

    __slots__ = ("wr_id", "size", "payload", "opcode", "priority")

    def __init__(self, size: int, payload: Any = None,
                 wr_id: Optional[int] = None,
                 opcode: Opcode = Opcode.SEND,
                 priority: int = 1):
        if size < 0:
            raise ValueError("size must be >= 0")
        self.wr_id = wr_id if wr_id is not None else next(_wr_ids)
        self.size = size
        self.payload = payload
        self.opcode = opcode
        #: Link service level: 0 = control/high-priority (jumps queued
        #: bulk frames, like a dedicated VL), 1 = bulk data.
        self.priority = priority

    def __repr__(self) -> str:
        return f"<{type(self).__name__} id={self.wr_id} {self.size}B>"


class SendWR(WorkRequest):
    """Channel-semantics send.  For UD QPs, ``remote`` addresses the
    destination ``(lid, qpn)`` (the address-handle analogue)."""

    __slots__ = ("remote",)

    def __init__(self, size: int, payload: Any = None,
                 remote: Optional[Tuple[int, int]] = None,
                 wr_id: Optional[int] = None, priority: int = 1):
        super().__init__(size, payload, wr_id, Opcode.SEND,
                         priority=priority)
        self.remote = remote


class RecvWR(WorkRequest):
    """Posted receive buffer of a given capacity."""

    __slots__ = ()

    def __init__(self, size: int, wr_id: Optional[int] = None):
        super().__init__(size, None, wr_id, Opcode.RECV)


class RDMAWriteWR(WorkRequest):
    """Memory-semantics write; optionally with immediate data (which
    consumes a receive WR at the responder and raises a completion)."""

    __slots__ = ("imm",)

    def __init__(self, size: int, payload: Any = None, imm: Any = None,
                 wr_id: Optional[int] = None):
        opcode = Opcode.RDMA_WRITE_WITH_IMM if imm is not None else Opcode.RDMA_WRITE
        super().__init__(size, payload, wr_id, opcode)
        self.imm = imm


class RDMAReadWR(WorkRequest):
    """Memory-semantics read of ``size`` bytes from the responder."""

    __slots__ = ()

    def __init__(self, size: int, wr_id: Optional[int] = None):
        super().__init__(size, None, wr_id, Opcode.RDMA_READ)


class AtomicWR(WorkRequest):
    """64-bit remote atomic (fetch-and-add or compare-and-swap).

    ``addr`` names the remote word; the completion carries the value the
    word held *before* the operation (IB atomic semantics).
    """

    __slots__ = ("addr", "add", "compare", "swap")

    def __init__(self, opcode: Opcode, addr: int, add: int = 0,
                 compare: int = 0, swap: int = 0,
                 wr_id: Optional[int] = None):
        if opcode not in (Opcode.ATOMIC_FETCH_ADD, Opcode.ATOMIC_CMP_SWAP):
            raise ValueError(f"{opcode} is not an atomic opcode")
        super().__init__(8, None, wr_id, opcode)
        self.addr = addr
        self.add = add
        self.compare = compare
        self.swap = swap


class WorkCompletion:
    """A CQ entry."""

    __slots__ = ("wr_id", "opcode", "status", "byte_len", "qp_num",
                 "payload", "imm", "timestamp", "src_qp", "src_lid")

    def __init__(self, wr_id: int, opcode: Opcode, status: WCStatus,
                 byte_len: int, qp_num: int, timestamp: float,
                 payload: Any = None, imm: Any = None, src_qp: int = 0,
                 src_lid: int = 0):
        self.wr_id = wr_id
        self.opcode = opcode
        self.status = status
        self.byte_len = byte_len
        self.qp_num = qp_num
        self.payload = payload
        self.imm = imm
        self.timestamp = timestamp
        self.src_qp = src_qp
        #: LID of the sending HCA (GRH-derived for UD, connection-known
        #: for RC); lets upper layers demultiplex without global QPNs.
        self.src_lid = src_lid

    @property
    def ok(self) -> bool:
        return self.status is WCStatus.SUCCESS

    def __repr__(self) -> str:
        return (f"<WC wr={self.wr_id} {self.opcode.value} "
                f"{self.status.value} {self.byte_len}B qp={self.qp_num}>")
