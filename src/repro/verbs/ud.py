"""Unreliable Datagram transport.

UD is connectionless and unacknowledged: messages are limited to the IB
MTU, the sender completes as soon as the datagram is on the wire, and
datagrams arriving at a QP with no posted receive are silently dropped.
Because nothing waits for ACKs, UD bandwidth is **independent of WAN
delay** — the paper's Fig. 4 observation falls out of the model by
construction (and the test-suite checks it stays that way).
"""

from __future__ import annotations

from typing import Any, Tuple

from ..calibration import HardwareProfile
from ..fabric.node import HCA
from ..fabric.packet import Frame, wire_size
from ..sim import URGENT, ReusableTimeout, Simulator, Store
from .cq import CompletionQueue
from .ops import Opcode, SendWR, WCStatus, WorkCompletion
from .qp import QPState, QueuePair

__all__ = ["UDQueuePair"]

UD_DATA = "ud_data"

#: Kill switch for the callback-mode send pump, flipped only by
#: :func:`repro.sim._legacy.legacy_dispatch` (see
#: ``repro.fabric.link._FAST_PUMP``).
_FAST_PUMP = True


class UDQueuePair(QueuePair):
    """Unreliable-datagram queue pair."""

    transport = "ud"

    def __init__(self, sim: Simulator, hca: HCA, send_cq: CompletionQueue,
                 recv_cq: CompletionQueue, profile: HardwareProfile,
                 srq=None):
        super().__init__(sim, hca, send_cq, recv_cq, profile, srq=srq)
        self.state = QPState.RTS  # UD QPs need no connection
        self._send_backlog: Store = Store(sim)
        self.bytes_sent = 0
        self.messages_sent = 0
        m = getattr(sim, "metrics", None)
        if m is not None:
            self._m_msgs = m.counter("ud", "messages")
            self._m_bytes = m.counter("ud", "bytes_sent")
            self._m_wqe = m.counter("ud", "wqe_completions")
            self._m_dropped = m.counter("ud", "recv_dropped")
        else:
            self._m_msgs = self._m_bytes = None
            self._m_wqe = self._m_dropped = None
        self._send_wait = ReusableTimeout(sim)
        # Callback-mode pump when uninstrumented (same event trajectory
        # as the generator, no resumes); see repro.fabric.link.
        if _FAST_PUMP and m is None:
            sim.call_at(0.0, self._next_send, priority=URGENT,
                        cancellable=False)
        else:
            sim.process(self._send_pump(), name=f"udqp{self.qpn}.send")

    # -- send side -------------------------------------------------------
    def post_send(self, wr: SendWR) -> None:
        if wr.remote is None:
            raise ValueError("UD sends need an address handle: wr.remote")
        if wr.size > self.profile.ib_mtu:
            raise ValueError(
                f"UD message of {wr.size}B exceeds the {self.profile.ib_mtu}B "
                f"MTU (UD cannot segment)")
        self._send_backlog.put(wr)

    def send(self, remote: Tuple[int, int], size: int,
             payload: Any = None) -> SendWR:
        wr = SendWR(size, payload, remote=remote)
        self.post_send(wr)
        return wr

    # -- callback-mode pump (no metrics) --------------------------------
    # Mirrors _send_pump() step for step; same event trajectory (one
    # URGENT kick-off pop, one StoreGet pop and one overhead pop per
    # datagram), no generator resumes.  See repro.fabric.link.

    def _next_send(self) -> None:
        get = self._send_backlog.get()
        if get.triggered:
            self._start_send(get._value)
        else:
            get.callbacks.append(self._on_send_wr)

    def _on_send_wr(self, event) -> None:
        self._start_send(event._value)

    def _start_send(self, wr: SendWR) -> None:
        self.sim.call_at(self.profile.hca_send_overhead_us,
                         self._finish_send, wr, cancellable=False)

    def _finish_send(self, wr: SendWR) -> None:
        profile = self.profile
        dst_lid, dst_qpn = wr.remote
        frame = Frame(
            src_lid=self.hca.lid, dst_lid=dst_lid, size=wr.size,
            wire_bytes=wire_size(wr.size, profile.ib_mtu,
                                 profile.ud_packet_header),
            kind=UD_DATA, src_qpn=self.qpn, dst_qpn=dst_qpn,
            payload=wr)
        self.bytes_sent += wr.size
        self.messages_sent += 1
        self.sim.call_at(profile.hca_wire_latency_us,
                         self.hca.transmit, frame, cancellable=False)
        # Local completion: the datagram left the HCA; nobody waits
        # for the far end.
        self.send_cq.push(WorkCompletion(
            wr.wr_id, Opcode.SEND, WCStatus.SUCCESS, wr.size,
            self.qpn, self.sim.now))
        self._next_send()

    # -- generator-mode pump (metrics / legacy dispatch) ----------------
    def _send_pump(self):
        profile = self.profile
        while True:
            wr: SendWR = yield self._send_backlog.get()
            yield self._send_wait.arm(profile.hca_send_overhead_us)
            dst_lid, dst_qpn = wr.remote
            frame = Frame(
                src_lid=self.hca.lid, dst_lid=dst_lid, size=wr.size,
                wire_bytes=wire_size(wr.size, profile.ib_mtu,
                                     profile.ud_packet_header),
                kind=UD_DATA, src_qpn=self.qpn, dst_qpn=dst_qpn,
                payload=wr)
            self.bytes_sent += wr.size
            self.messages_sent += 1
            if self._m_msgs is not None:
                self._m_msgs.inc()
                self._m_bytes.inc(wr.size)
                self._m_wqe.inc()
            self.sim.call_at(profile.hca_wire_latency_us,
                             self.hca.transmit, frame, cancellable=False)
            # Local completion: the datagram left the HCA; nobody waits
            # for the far end.
            self.send_cq.push(WorkCompletion(
                wr.wr_id, Opcode.SEND, WCStatus.SUCCESS, wr.size,
                self.qpn, self.sim.now))

    # -- receive side -------------------------------------------------------
    def handle_frame(self, frame: Frame) -> None:
        if frame.kind != UD_DATA:  # pragma: no cover - defensive
            raise RuntimeError(f"UD QP {self.qpn} got {frame.kind}")
        if not self._has_recv():
            self.recv_dropped += 1
            if self._m_dropped is not None:
                self._m_dropped.inc()
            return
        rwr = self._take_recv()
        self.sim.call_at(self.profile.hca_recv_overhead_us,
                         self._complete_recv, (rwr, frame),
                         cancellable=False)

    def _complete_recv(self, pair) -> None:
        rwr, frame = pair
        wr: SendWR = frame.payload
        self.recv_cq.push(WorkCompletion(
            rwr.wr_id, Opcode.RECV, WCStatus.SUCCESS, wr.size,
            self.qpn, self.sim.now, payload=wr.payload,
            src_qp=frame.src_qpn, src_lid=frame.src_lid))
