"""Unreliable Datagram transport.

UD is connectionless and unacknowledged: messages are limited to the IB
MTU, the sender completes as soon as the datagram is on the wire, and
datagrams arriving at a QP with no posted receive are silently dropped.
Because nothing waits for ACKs, UD bandwidth is **independent of WAN
delay** — the paper's Fig. 4 observation falls out of the model by
construction (and the test-suite checks it stays that way).
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from ..calibration import HardwareProfile
from ..fabric.node import HCA
from ..fabric.packet import Frame, wire_size
from ..sim import Simulator, Store
from .cq import CompletionQueue
from .ops import Opcode, SendWR, WCStatus, WorkCompletion
from .qp import QPState, QueuePair

__all__ = ["UDQueuePair"]

UD_DATA = "ud_data"


class UDQueuePair(QueuePair):
    """Unreliable-datagram queue pair."""

    transport = "ud"

    def __init__(self, sim: Simulator, hca: HCA, send_cq: CompletionQueue,
                 recv_cq: CompletionQueue, profile: HardwareProfile,
                 srq=None):
        super().__init__(sim, hca, send_cq, recv_cq, profile, srq=srq)
        self.state = QPState.RTS  # UD QPs need no connection
        self._send_backlog: Store = Store(sim)
        self.bytes_sent = 0
        self.messages_sent = 0
        m = getattr(sim, "metrics", None)
        if m is not None:
            self._m_msgs = m.counter("ud", "messages")
            self._m_bytes = m.counter("ud", "bytes_sent")
            self._m_wqe = m.counter("ud", "wqe_completions")
            self._m_dropped = m.counter("ud", "recv_dropped")
        else:
            self._m_msgs = self._m_bytes = None
            self._m_wqe = self._m_dropped = None
        sim.process(self._send_pump(), name=f"udqp{self.qpn}.send")

    # -- send side -------------------------------------------------------
    def post_send(self, wr: SendWR) -> None:
        if wr.remote is None:
            raise ValueError("UD sends need an address handle: wr.remote")
        if wr.size > self.profile.ib_mtu:
            raise ValueError(
                f"UD message of {wr.size}B exceeds the {self.profile.ib_mtu}B "
                f"MTU (UD cannot segment)")
        self._send_backlog.put(wr)

    def send(self, remote: Tuple[int, int], size: int,
             payload: Any = None) -> SendWR:
        wr = SendWR(size, payload, remote=remote)
        self.post_send(wr)
        return wr

    def _send_pump(self):
        profile = self.profile
        while True:
            wr: SendWR = yield self._send_backlog.get()
            yield self.sim.timeout(profile.hca_send_overhead_us)
            dst_lid, dst_qpn = wr.remote
            frame = Frame(
                src_lid=self.hca.lid, dst_lid=dst_lid, size=wr.size,
                wire_bytes=wire_size(wr.size, profile.ib_mtu,
                                     profile.ud_packet_header),
                kind=UD_DATA, src_qpn=self.qpn, dst_qpn=dst_qpn,
                payload=wr)
            self.bytes_sent += wr.size
            self.messages_sent += 1
            if self._m_msgs is not None:
                self._m_msgs.inc()
                self._m_bytes.inc(wr.size)
                self._m_wqe.inc()
            self._after(profile.hca_wire_latency_us,
                        lambda f=frame: self.hca.transmit(f))
            # Local completion: the datagram left the HCA; nobody waits
            # for the far end.
            self.send_cq.push(WorkCompletion(
                wr.wr_id, Opcode.SEND, WCStatus.SUCCESS, wr.size,
                self.qpn, self.sim.now))

    # -- receive side -------------------------------------------------------
    def handle_frame(self, frame: Frame) -> None:
        if frame.kind != UD_DATA:  # pragma: no cover - defensive
            raise RuntimeError(f"UD QP {self.qpn} got {frame.kind}")
        if not self._has_recv():
            self.recv_dropped += 1
            if self._m_dropped is not None:
                self._m_dropped.inc()
            return
        rwr = self._take_recv()
        wr: SendWR = frame.payload
        def complete(rwr=rwr, wr=wr, src=frame.src_qpn):
            self.recv_cq.push(WorkCompletion(
                rwr.wr_id, Opcode.RECV, WCStatus.SUCCESS, wr.size,
                self.qpn, self.sim.now, payload=wr.payload, src_qp=src,
                src_lid=frame.src_lid))
        self._after(self.profile.hca_recv_overhead_us, complete)
