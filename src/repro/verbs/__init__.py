"""InfiniBand verbs layer: QPs (RC/UD), CQs, MRs, RDMA and perftest."""

from . import perftest
from .cq import CompletionQueue, MemoryRegion, ProtectionDomain
from .device import VerbsContext, create_connected_rc_pair, create_ud_pair
from .ops import (AtomicWR, Opcode, RDMAReadWR, RDMAWriteWR, RecvWR, SendWR,
                  WCStatus, WorkCompletion, WorkRequest)
from .qp import QPState, QueuePair
from .rc import RCQueuePair, connect_rc_pair, reconnect_rc_pair
from .srq import SharedReceiveQueue
from .ud import UDQueuePair

__all__ = [
    "VerbsContext", "create_connected_rc_pair", "create_ud_pair",
    "CompletionQueue", "MemoryRegion", "ProtectionDomain",
    "Opcode", "WCStatus", "WorkRequest", "SendWR", "RecvWR",
    "RDMAWriteWR", "RDMAReadWR", "AtomicWR", "WorkCompletion",
    "QPState", "QueuePair", "RCQueuePair", "UDQueuePair",
    "SharedReceiveQueue",
    "connect_rc_pair", "reconnect_rc_pair", "perftest",
]
