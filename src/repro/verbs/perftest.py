"""Verbs-level microbenchmarks (the OFED *perftest* suite analogue).

These reproduce ``ib_send_lat``, ``ib_send_bw``, ``ib_write_bw`` and their
bidirectional variants, which the paper uses for its §3.2 baseline.

Measurement conventions (matching perftest):

* latency = ping-pong round-trip / 2, averaged over iterations;
* bandwidth is measured in steady state, from the first to the last
  message completion, so pipe-fill time and the one-way delay offset do
  not bias short runs.  SEND bandwidth is observed at the receiver,
  RDMA-write bandwidth at the initiator (its only completion point).
"""

from __future__ import annotations

from typing import Optional

from ..fabric.node import Node
from ..sim import Simulator
from .device import create_connected_rc_pair, create_ud_pair
from .ops import RecvWR
from .qp import QueuePair
from .ud import UDQueuePair

__all__ = ["run_send_lat", "run_send_bw", "run_bidir_bw", "run_write_bw",
           "run_write_lat"]

_ACK_SLACK = 4096  # extra recv WRs posted beyond the strict need


def _make_pair(node_a: Node, node_b: Node, transport: str,
               window: Optional[int]):
    if transport == "rc":
        return create_connected_rc_pair(node_a, node_b, send_window=window)
    if transport == "ud":
        return create_ud_pair(node_a, node_b)
    raise ValueError(f"unknown transport {transport!r}")


def _post_recvs(qp: QueuePair, size: int, count: int) -> None:
    for _ in range(count):
        qp.post_recv(RecvWR(size))


def _send(qp: QueuePair, peer: QueuePair, size: int) -> None:
    if isinstance(qp, UDQueuePair):
        qp.send((peer.hca.lid, peer.qpn), size)
    else:
        qp.send(size)


# ---------------------------------------------------------------------------
# latency
# ---------------------------------------------------------------------------

def run_send_lat(sim: Simulator, node_a: Node, node_b: Node, size: int,
                 iters: int = 50, transport: str = "rc") -> float:
    """Ping-pong send/recv latency in µs (one way)."""
    qp_a, qp_b = _make_pair(node_a, node_b, transport, None)
    result = {}

    def client():
        _post_recvs(qp_a, size, iters)
        t0 = sim.now
        for _ in range(iters):
            _send(qp_a, qp_b, size)
            yield qp_a.recv_cq.wait()
        result["lat"] = (sim.now - t0) / (2 * iters)

    def server():
        _post_recvs(qp_b, size, iters)
        for _ in range(iters):
            yield qp_b.recv_cq.wait()
            _send(qp_b, qp_a, size)

    sim.process(server(), name="lat.server")
    done = sim.process(client(), name="lat.client")
    sim.run(until=done)
    return result["lat"]


def run_write_lat(sim: Simulator, node_a: Node, node_b: Node, size: int,
                  iters: int = 50) -> float:
    """RDMA-write ping-pong latency in µs (one way), via write-with-imm."""
    qp_a, qp_b = _make_pair(node_a, node_b, "rc", None)
    result = {}

    def client():
        _post_recvs(qp_a, size, iters)
        t0 = sim.now
        for _ in range(iters):
            qp_a.rdma_write(size, imm=1)
            yield qp_a.recv_cq.wait()
        result["lat"] = (sim.now - t0) / (2 * iters)

    def server():
        _post_recvs(qp_b, size, iters)
        for _ in range(iters):
            yield qp_b.recv_cq.wait()
            qp_b.rdma_write(size, imm=1)

    sim.process(server(), name="wlat.server")
    done = sim.process(client(), name="wlat.client")
    sim.run(until=done)
    return result["lat"]


# ---------------------------------------------------------------------------
# bandwidth
# ---------------------------------------------------------------------------

def run_send_bw(sim: Simulator, node_a: Node, node_b: Node, size: int,
                iters: int = 64, transport: str = "rc",
                window: Optional[int] = None, fabric=None) -> float:
    """Unidirectional send/recv bandwidth in MB/s, receiver-observed.

    With flow mode engaged (see :mod:`repro.flow.dispatch`) the run is
    delegated to the flow twin, which pays per-message events only
    until the steady state is proved and completes the tail
    analytically.  ``fabric`` is only consulted by that gate (fault
    plans force packet mode) and for WAN wire-byte accounting.
    """
    if iters < 2:
        raise ValueError("need at least 2 iterations")
    from ..flow.dispatch import engaged
    if engaged(sim, fabric):
        from ..flow.verbs import flow_send_bw
        return flow_send_bw(sim, node_a, node_b, size, iters=iters,
                            transport=transport, window=window,
                            fabric=fabric)
    qp_a, qp_b = _make_pair(node_a, node_b, transport, window)
    result = {}

    def sender():
        for _ in range(iters):
            _send(qp_a, qp_b, size)
        if False:  # pragma: no cover - keeps this a generator
            yield

    def receiver():
        _post_recvs(qp_b, size, iters)
        yield qp_b.recv_cq.wait()
        t0 = sim.now
        for _ in range(iters - 1):
            yield qp_b.recv_cq.wait()
        result["mbps"] = size * (iters - 1) / (sim.now - t0)

    sim.process(sender(), name="bw.sender")
    done = sim.process(receiver(), name="bw.receiver")
    sim.run(until=done)
    return result["mbps"]


def run_bidir_bw(sim: Simulator, node_a: Node, node_b: Node, size: int,
                 iters: int = 64, transport: str = "rc",
                 window: Optional[int] = None, fabric=None) -> float:
    """Bidirectional send/recv bandwidth in MB/s (sum of both directions)."""
    if iters < 2:
        raise ValueError("need at least 2 iterations")
    from ..flow.dispatch import engaged
    if engaged(sim, fabric):
        from ..flow.verbs import flow_bidir_bw
        return flow_bidir_bw(sim, node_a, node_b, size, iters=iters,
                             transport=transport, window=window,
                             fabric=fabric)
    qp_a, qp_b = _make_pair(node_a, node_b, transport, window)
    result = {}

    def sender(qp, peer):
        for _ in range(iters):
            _send(qp, peer, size)
        if False:  # pragma: no cover
            yield

    def receiver(qp, key):
        _post_recvs(qp, size, iters)
        yield qp.recv_cq.wait()
        t0 = sim.now
        for _ in range(iters - 1):
            yield qp.recv_cq.wait()
        result[key] = size * (iters - 1) / (sim.now - t0)

    sim.process(sender(qp_a, qp_b), name="bibw.sender.a")
    sim.process(sender(qp_b, qp_a), name="bibw.sender.b")
    done_a = sim.process(receiver(qp_b, "ab"), name="bibw.recv.b")
    done_b = sim.process(receiver(qp_a, "ba"), name="bibw.recv.a")
    sim.run(until=sim.all_of([done_a, done_b]))
    return result["ab"] + result["ba"]


def run_write_bw(sim: Simulator, node_a: Node, node_b: Node, size: int,
                 iters: int = 64, window: Optional[int] = None) -> float:
    """RDMA-write bandwidth in MB/s, initiator-observed."""
    if iters < 2:
        raise ValueError("need at least 2 iterations")
    qp_a, qp_b = _make_pair(node_a, node_b, "rc", window)
    result = {}

    def initiator():
        for _ in range(iters):
            qp_a.rdma_write(size)
        yield qp_a.send_cq.wait()
        t0 = sim.now
        for _ in range(iters - 1):
            yield qp_a.send_cq.wait()
        result["mbps"] = size * (iters - 1) / (sim.now - t0)

    done = sim.process(initiator(), name="wbw.initiator")
    sim.run(until=done)
    return result["mbps"]
