"""Queue-pair base machinery shared by the RC and UD transports."""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque

from ..calibration import HardwareProfile
from ..fabric.node import HCA
from ..fabric.packet import Frame
from ..sim import Simulator
from .cq import CompletionQueue
from .ops import RecvWR

__all__ = ["QPState", "QueuePair"]


class QPState(enum.Enum):
    RESET = "reset"
    INIT = "init"
    RTS = "rts"  # ready-to-send (we collapse RTR->RTS, as apps do)
    ERROR = "error"


class QueuePair:
    """Common QP state: receive queue, CQ plumbing, timing helpers."""

    transport = "base"

    def __init__(self, sim: Simulator, hca: HCA, send_cq: CompletionQueue,
                 recv_cq: CompletionQueue, profile: HardwareProfile,
                 srq=None):
        self.sim = sim
        self.hca = hca
        self.profile = profile
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.qpn = hca.allocate_qpn(self)
        self.state = QPState.INIT
        self.recv_queue: Deque[RecvWR] = deque()
        self.srq = srq
        if srq is not None:
            srq.attach(self)
        self.recv_posted_total = 0
        self.recv_dropped = 0

    # -- receive side -------------------------------------------------------
    def post_recv(self, wr: RecvWR) -> None:
        if self.state is QPState.ERROR:
            raise RuntimeError(f"QP {self.qpn} is in the error state")
        if self.srq is not None:
            raise RuntimeError(
                f"QP {self.qpn} uses an SRQ; post receives to the SRQ")
        self.recv_queue.append(wr)
        self.recv_posted_total += 1
        self._on_recv_posted()

    def _has_recv(self) -> bool:
        if self.srq is not None:
            return len(self.srq) > 0
        return bool(self.recv_queue)

    def _take_recv(self) -> RecvWR:
        if self.srq is not None:
            return self.srq.take()
        return self.recv_queue.popleft()

    def _on_recv_posted(self) -> None:
        """Hook for transports that buffer data awaiting receives."""

    # -- helpers ---------------------------------------------------------
    def _after(self, delay_us: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` after ``delay_us`` without blocking the caller.

        This models pipelined fixed-latency stages (PCIe launch, receive
        DMA) that add latency but do not consume wire or CPU throughput.
        """
        self.sim.call_at(delay_us, fn, cancellable=False)

    def handle_frame(self, frame: Frame) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        self.state = QPState.ERROR
        self.hca.deregister_qp(self.qpn)

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} qpn={self.qpn} "
                f"lid={self.hca.lid} {self.state.value}>")
