"""Completion queues and memory regions."""

from __future__ import annotations

from typing import List

from ..sim import Simulator, Store
from .ops import WorkCompletion

__all__ = ["CompletionQueue", "MemoryRegion", "ProtectionDomain"]


class CompletionQueue:
    """Queue of :class:`WorkCompletion`; supports blocking and polling."""

    def __init__(self, sim: Simulator, name: str = "cq"):
        self.sim = sim
        self.name = name
        self._store: Store = Store(sim)
        self.completions_seen = 0

    def push(self, wc: WorkCompletion) -> None:
        self.completions_seen += 1
        self._store.put(wc)

    def wait(self):
        """Event yielding the next completion (blocking poll)."""
        return self._store.get()

    def poll(self, max_entries: int = 16) -> List[WorkCompletion]:
        """Non-blocking poll: drain up to ``max_entries`` completions."""
        out: List[WorkCompletion] = []
        while self._store.items and len(out) < max_entries:
            out.append(self._store.items.popleft())
        return out

    def __len__(self) -> int:
        return len(self._store)


class ProtectionDomain:
    """Groups MRs and QPs (bookkeeping only, as in a single-tenant app)."""

    def __init__(self, name: str = "pd"):
        self.name = name
        self.regions: List["MemoryRegion"] = []


class MemoryRegion:
    """A registered buffer.  The simulator does not move real bytes, but
    RDMA operations validate against MR bounds as a real HCA would."""

    _next_key = 1

    def __init__(self, pd: ProtectionDomain, length: int):
        if length <= 0:
            raise ValueError("MR length must be positive")
        self.pd = pd
        self.length = length
        self.lkey = MemoryRegion._next_key
        self.rkey = MemoryRegion._next_key
        MemoryRegion._next_key += 1
        pd.regions.append(self)

    def check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.length:
            raise ValueError(
                f"access [{offset}, {offset+nbytes}) outside MR of "
                f"{self.length} bytes")
